//===- aot/CppEmitter.cpp - System F to C++17 transpiler ------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
//
// Code shape
// ----------
// The program becomes one translation unit:
//
//   * a runtime prelude (tagged Value with an intrusive refcount and
//     pooled heap objects, the builtin table, apply/tyapply, a renderer
//     matching valueToString),
//   * one `static Value fn_K(State&, const Value *C, const Value *A)`
//     per Abs/TyAbs, where C is the flat capture array and A the
//     argument array — closures are one header plus a trailing flat
//     capture array, no environment spine and no per-closure vector,
//   * `static Value fg_program(State&)` for the top-level term,
//   * a main() that parses --max-steps/--max-depth/--repeat, runs the
//     program on a 512 MiB pthread stack (deep recursion), prints the
//     rendered value (exit 0) or the runtime error (exit 3).
//
// Statements are emitted flat — one fresh `Value vN` per term node at
// the current block level, never a nested block per node — because a
// 1000-deep cons chain would otherwise exceed the host compiler's
// bracket-nesting limit.  Only `if` opens blocks (its branches really
// are conditionally evaluated).
//
// Coalesced accounting (the abort contract)
// -----------------------------------------
// The tree walker charges one step and one depth check per term node:
// `++Steps > MaxSteps` then `Depth >= MaxDepth` then ++Depth, undone
// where its DepthGuard closes.  Emitted code no longer performs that
// dance per node.  Instead:
//
//   * Depth is a pure function of lexical nesting: a node at nesting
//     offset `o` inside a function whose entry depth was D0 is checked
//     at exactly `D0 + o`.  So emitted functions capture
//     `const uint64_t D0 = S.Depth;` once, and only *write* S.Depth
//     immediately before a call (`rt::apply`/`rt::tyapply`), where the
//     callee needs to observe the tree-walker's depth.
//   * Step/depth charges are *coalesced per basic-block segment*: a
//     run of consecutive infallible charges becomes one
//     `rt::charge(S, K, D0, staircase)` at the next abort point
//     (a call, a builtin, proj, truth, a branch end, or the function
//     epilogue).  The staircase is the prefix-maxima of the segment's
//     depth offsets, so the *first* charge that would cross any given
//     MaxDepth is recoverable exactly.
//   * On overrun, rt::chargeFail adjudicates which limit the tree
//     walker would have reported first: the 1-based index of the first
//     over-budget step (`MaxSteps - S0 + 1`) against the index of the
//     first staircase record at or above MaxDepth; ties go to the step
//     limit because each node checks steps before depth.  This keeps
//     abort diagnostics byte-identical to Eval.cpp even when the abort
//     lands mid-segment.
//
// applyImpl's own frame still charges eagerly inside rt::apply; a
// TyApp instantiation evaluates the body inside the TyApp frame with
// no apply frame, exactly like the tree-walker.
//
// Fix memoization
// ---------------
// The language is pure, so the unroll of a given `fix` value is
// deterministic: rt::apply memoizes it per run keyed on the FixO
// address (a Keepalive copy pins the address), mirroring the VM's
// inline-cached fix memo.  A hit replays the unroll's metered budget —
// charging its recorded steps and requiring its transient depth to
// fit — so runs under smaller budgets abort exactly as the uncached
// computation would.  The memo lives in State, not on the FixO, so
// values stay acyclic and the binaries stay leak-clean under ASan.
//
// Memory discipline
// -----------------
// Heap objects (cons cells, tuples, closures, fix wrappers) come from
// per-shape free-lists and return there on death, so steady-state
// loops run allocation-free.  Destruction is a single explicit
// work-list for *all* shapes — a million-element list or a deeply
// nested tuple frees in constant native stack.  The renderer is
// likewise iterative.
//
//===----------------------------------------------------------------------===//

#include "aot/CppEmitter.h"
#include <cstdint>
#include <set>
#include <vector>

using namespace fg;
using namespace fg::sf;

const unsigned fg::aot::EmitterVersion = 2;

namespace {

//===----------------------------------------------------------------------===//
// Builtin table
//===----------------------------------------------------------------------===//

// Must match the `Builtins[]` table in the runtime prelude below, in
// order.  `nil` is not here: it is a plain value, not a function.
struct BuiltinRow {
  const char *Name;
  unsigned Arity;
};
const BuiltinRow BuiltinTable[] = {
    {"iadd", 2}, {"isub", 2}, {"imult", 2}, {"imax", 2}, {"imin", 2},
    {"idiv", 2}, {"imod", 2}, {"ineg", 1},  {"ieq", 2},  {"ine", 2},
    {"ilt", 2},  {"ile", 2},  {"igt", 2},   {"ige", 2},  {"band", 2},
    {"bor", 2},  {"bnot", 1}, {"cons", 2},  {"car", 1},  {"cdr", 1},
    {"null", 1},
};
const int NumBuiltins = sizeof(BuiltinTable) / sizeof(BuiltinTable[0]);

int builtinId(const std::string &Name) {
  for (int I = 0; I != NumBuiltins; ++I)
    if (Name == BuiltinTable[I].Name)
      return I;
  return -1;
}

//===----------------------------------------------------------------------===//
// Runtime prelude
//===----------------------------------------------------------------------===//

const char *RuntimePrelude = R"RT(#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>
#include <pthread.h>

namespace rt {

// Abort diagnostics; byte-identical to systemf/Eval.cpp.
struct Err {
  std::string Msg;
};

[[noreturn]] inline void fail(std::string Msg) { throw Err{std::move(Msg)}; }

enum class Tag : uint8_t {
  Int,
  Bool,
  Builtin,
  Nil,
  // Heap tags from here on.
  Tuple,
  Cons,
  Closure,
  TyClosure,
  Fix,
};

inline bool heapTag(Tag T) { return T >= Tag::Tuple; }

// Values are immutable and acyclic, so a plain (non-atomic: the
// program is single-threaded) intrusive refcount reclaims everything —
// the generated binaries run leak-clean under LeakSanitizer in CI.
struct Obj {
  uint32_t RC = 1;
};

struct State;
struct Value;
using Fn = Value (*)(State &, const Value *C, const Value *A);

void destroy(Obj *O, Tag T);

struct Value {
  Tag T = Tag::Int;
  int64_t I = 0;
  Obj *O = nullptr;

  Value() = default;
  Value(const Value &V) : T(V.T), I(V.I), O(V.O) {
    if (O && heapTag(T))
      ++O->RC;
  }
  Value(Value &&V) noexcept : T(V.T), I(V.I), O(V.O) {
    V.T = Tag::Int;
    V.O = nullptr;
  }
  ~Value() { release(); }
  Value &operator=(const Value &V) {
    Value Tmp(V);
    return *this = static_cast<Value &&>(Tmp);
  }
  Value &operator=(Value &&V) noexcept {
    if (this != &V) {
      release();
      T = V.T;
      I = V.I;
      O = V.O;
      V.T = Tag::Int;
      V.O = nullptr;
    }
    return *this;
  }
  void release() {
    if (O && heapTag(T) && --O->RC == 0)
      destroy(O, T);
    O = nullptr;
  }
};

// One memoized `fix` unroll: (fix f) -> (f (fix f)), plus the budget
// the unroll consumed so a replay is indistinguishable from re-running
// it.  Keepalive pins the FixO address the entry is keyed on.
struct FixMemoEntry {
  Value Keepalive;
  Value Unrolled;
  uint64_t StepCost = 0;
  uint64_t DepthNeed = 0;
};

// The evaluation budget.  enter()/leave() mirror the tree-walking
// evaluator's per-frame accounting (steps check, then depth check,
// then DepthGuard) and are used only by rt::apply — emitted code
// charges coalesced segments through rt::charge/charge1 instead.
struct State {
  uint64_t Steps = 0;
  uint64_t Depth = 0;
  uint64_t MaxSteps = 200000000ULL;
  uint64_t MaxDepth = 100000ULL;
  // High-water mark of Depth, maintained so fix-memo misses can meter
  // the transient depth an unroll needs (the VM keeps the same mark).
  uint64_t MaxDepthSeen = 0;
  std::unordered_map<const Obj *, FixMemoEntry> FixMemo;
  const Obj *FixMemoKey = nullptr;       // Inline cache: the one hot fix.
  const FixMemoEntry *FixMemoCached = nullptr;

  void enter() {
    if (++Steps > MaxSteps)
      fail("evaluation exceeded the step limit");
    if (Depth >= MaxDepth)
      fail("evaluation exceeded the recursion depth limit");
    if (++Depth > MaxDepthSeen)
      MaxDepthSeen = Depth;
  }
  void leave() { --Depth; }
};

//===--- Coalesced step/depth charges -------------------------------------===//
//
// One rt::charge covers a whole segment of K tree-walker nodes.  The
// staircase R[0..N) records the segment's prefix-maxima of depth
// offsets: R[i].Idx is the 1-based position within the segment of the
// first charge reaching depth D0 + R[i].Off.  Because every earlier
// charge sits strictly below R[i].Off, the first charge crossing any
// depth threshold is exactly the first staircase record at or above
// it — so an overrun can be adjudicated precisely against the first
// over-budget step.

struct SegRec {
  uint32_t Idx; // 1-based position of this prefix-maximum in the segment.
  uint32_t Off; // Depth offset from the charging function's D0.
};

inline void noteDepth(State &S, uint64_t D) {
  if (D > S.MaxDepthSeen)
    S.MaxDepthSeen = D;
}

[[noreturn]] inline void chargeFail(State &S, uint64_t K, uint64_t D0,
                                    const SegRec *R, uint32_t N) {
  // The tree walker checks steps before depth at each node, so the
  // first failing charge index decides, with ties going to steps.
  uint64_t S0 = S.Steps - K;
  uint64_t Js = S.Steps > S.MaxSteps ? S.MaxSteps - S0 + 1 : UINT64_MAX;
  uint64_t Jd = UINT64_MAX;
  for (uint32_t I = 0; I != N; ++I)
    if (D0 + R[I].Off >= S.MaxDepth) {
      Jd = R[I].Idx;
      break;
    }
  if (Js <= Jd)
    fail("evaluation exceeded the step limit");
  fail("evaluation exceeded the recursion depth limit");
}

inline void charge(State &S, uint64_t K, uint64_t D0, const SegRec *R,
                   uint32_t N) {
  S.Steps += K;
  uint64_t Top = D0 + R[N - 1].Off;
  if (S.Steps > S.MaxSteps || Top >= S.MaxDepth)
    chargeFail(S, K, D0, R, N);
  noteDepth(S, Top + 1);
}

// Degenerate staircase (its first charge is already the deepest).
inline void charge1(State &S, uint64_t K, uint64_t DAt) {
  S.Steps += K;
  if (S.Steps > S.MaxSteps || DAt >= S.MaxDepth) {
    SegRec R{1, 0};
    chargeFail(S, K, DAt, &R, 1);
  }
  noteDepth(S, DAt + 1);
}

//===--- Heap objects and free-list pools ---------------------------------===//

struct TupleO : Obj {
  std::vector<Value> Elems;
};
struct ConsO : Obj {
  Value Head;
  Value Tail; // Nil or Cons.
};
// Closures and type closures share one shape: a header with the code
// pointer followed by a flat trailing array of NCaps captures — no
// per-closure vector, no environment spine.  The Tag tells them apart.
struct FnO : Obj {
  Fn F;
  uint32_t Arity; // 0 for type closures.
  uint32_t NCaps;
  Value *caps() { return reinterpret_cast<Value *>(this + 1); }
  const Value *caps() const {
    return reinterpret_cast<const Value *>(this + 1);
  }
};
struct FixO : Obj {
  Value F;
};

// Per-shape free-lists: steady-state loops recycle their cells instead
// of hitting the allocator.  Pool storage is reachable from these
// statics, so LeakSanitizer stays quiet.  Recycled objects are kept in
// the neutral state destroy() leaves them in (children released,
// vectors cleared but with capacity retained).
constexpr uint32_t MaxFnBin = 8;
static std::vector<TupleO *> TuplePool;
static std::vector<ConsO *> ConsPool;
static std::vector<FixO *> FixPool;
static std::vector<FnO *> FnPool[MaxFnBin + 1];

inline TupleO *allocTuple() {
  if (!TuplePool.empty()) {
    TupleO *O = TuplePool.back();
    TuplePool.pop_back();
    O->RC = 1;
    return O;
  }
  return new TupleO;
}
inline ConsO *allocCons() {
  if (!ConsPool.empty()) {
    ConsO *O = ConsPool.back();
    ConsPool.pop_back();
    O->RC = 1;
    return O;
  }
  return new ConsO;
}
inline FixO *allocFix() {
  if (!FixPool.empty()) {
    FixO *O = FixPool.back();
    FixPool.pop_back();
    O->RC = 1;
    return O;
  }
  return new FixO;
}
inline FnO *allocFn(uint32_t NCaps) {
  if (NCaps <= MaxFnBin && !FnPool[NCaps].empty()) {
    FnO *O = FnPool[NCaps].back();
    FnPool[NCaps].pop_back();
    O->RC = 1;
    return O;
  }
  void *P = ::operator new(sizeof(FnO) + NCaps * sizeof(Value));
  FnO *O = new (P) FnO;
  O->NCaps = NCaps;
  Value *C = O->caps();
  for (uint32_t I = 0; I != NCaps; ++I)
    new (C + I) Value;
  return O;
}

// Drops a dead child reference without running its destructor chain:
// the owner is being dismantled on the explicit work-list, so a child
// whose refcount hits zero is queued rather than destroyed in place.
inline void recycleChild(Value &V, std::vector<std::pair<Obj *, Tag>> &Dead) {
  if (V.O && heapTag(V.T) && --V.O->RC == 0)
    Dead.emplace_back(V.O, V.T);
  V.T = Tag::Int;
  V.O = nullptr;
}

// One work-list frees every shape — million-element list spines, deep
// tuple-of-tuple nests, and closure capture chains all die in constant
// native stack.  Freed cells go back to their pool.
void destroy(Obj *O0, Tag T0) {
  static std::vector<std::pair<Obj *, Tag>> Dead;
  size_t Base = Dead.size();
  Dead.emplace_back(O0, T0);
  while (Dead.size() > Base) {
    Obj *O = Dead.back().first;
    Tag T = Dead.back().second;
    Dead.pop_back();
    switch (T) {
    case Tag::Tuple: {
      TupleO *P = static_cast<TupleO *>(O);
      for (Value &E : P->Elems)
        recycleChild(E, Dead);
      P->Elems.clear();
      TuplePool.push_back(P);
      break;
    }
    case Tag::Cons: {
      ConsO *P = static_cast<ConsO *>(O);
      recycleChild(P->Head, Dead);
      recycleChild(P->Tail, Dead);
      ConsPool.push_back(P);
      break;
    }
    case Tag::Closure:
    case Tag::TyClosure: {
      FnO *P = static_cast<FnO *>(O);
      Value *C = P->caps();
      for (uint32_t I = 0; I != P->NCaps; ++I)
        recycleChild(C[I], Dead);
      if (P->NCaps <= MaxFnBin)
        FnPool[P->NCaps].push_back(P);
      else
        ::operator delete(P);
      break;
    }
    case Tag::Fix: {
      FixO *P = static_cast<FixO *>(O);
      recycleChild(P->F, Dead);
      FixPool.push_back(P);
      break;
    }
    default:
      break;
    }
  }
}

inline Value mkInt(int64_t I) {
  Value V;
  V.T = Tag::Int;
  V.I = I;
  return V;
}
inline Value mkBool(bool B) {
  Value V;
  V.T = Tag::Bool;
  V.I = B;
  return V;
}
inline Value mkBuiltin(int64_t Id) {
  Value V;
  V.T = Tag::Builtin;
  V.I = Id;
  return V;
}
inline Value mkNil() {
  Value V;
  V.T = Tag::Nil;
  return V;
}
inline Value mkHeap(Tag T, Obj *O) {
  Value V;
  V.T = T;
  V.O = O;
  return V;
}
template <typename... Es> inline Value mkTuple(Es &&...E) {
  TupleO *O = allocTuple();
  O->Elems.reserve(sizeof...(E));
  (O->Elems.emplace_back(static_cast<Es &&>(E)), ...);
  return mkHeap(Tag::Tuple, O);
}
inline Value mkCons(Value Head, Value Tail) {
  ConsO *O = allocCons();
  O->Head = std::move(Head);
  O->Tail = std::move(Tail);
  return mkHeap(Tag::Cons, O);
}
template <typename... Cs>
inline Value mkClosure(Fn F, uint32_t Arity, Cs &&...C) {
  FnO *O = allocFn(static_cast<uint32_t>(sizeof...(C)));
  O->F = F;
  O->Arity = Arity;
  Value *P = O->caps();
  uint32_t I = 0;
  ((P[I++] = static_cast<Cs &&>(C)), ...);
  (void)P;
  (void)I;
  return mkHeap(Tag::Closure, O);
}
template <typename... Cs> inline Value mkTyClosure(Fn F, Cs &&...C) {
  FnO *O = allocFn(static_cast<uint32_t>(sizeof...(C)));
  O->F = F;
  O->Arity = 0;
  Value *P = O->caps();
  uint32_t I = 0;
  ((P[I++] = static_cast<Cs &&>(C)), ...);
  (void)P;
  (void)I;
  return mkHeap(Tag::TyClosure, O);
}
inline Value mkFix(Value F) {
  FixO *O = allocFix();
  O->F = std::move(F);
  return mkHeap(Tag::Fix, O);
}

const char *builtinName(int64_t Id);

// Rendering; byte-identical to sf::valueToString.  Driven by an
// explicit token stack so arbitrarily deep values render in constant
// native stack.
inline std::string render(const Value &Root) {
  struct Tok {
    const Value *V;  // Value to render, or
    const char *Lit; // literal text to append.
  };
  std::string S;
  std::vector<Tok> Stk;
  std::vector<const Value *> Elems; // Scratch: children in source order.
  Stk.push_back({&Root, nullptr});
  while (!Stk.empty()) {
    Tok T = Stk.back();
    Stk.pop_back();
    if (T.Lit) {
      S += T.Lit;
      continue;
    }
    const Value &V = *T.V;
    switch (V.T) {
    case Tag::Int:
      S += std::to_string(V.I);
      break;
    case Tag::Bool:
      S += V.I ? "true" : "false";
      break;
    case Tag::Builtin:
      S += "<builtin ";
      S += builtinName(V.I);
      S += ">";
      break;
    case Tag::Nil:
    case Tag::Cons: {
      Elems.clear();
      for (const Value *L = &V; L->T == Tag::Cons;
           L = &static_cast<const ConsO *>(L->O)->Tail)
        Elems.push_back(&static_cast<const ConsO *>(L->O)->Head);
      S += "[";
      Stk.push_back({nullptr, "]"});
      for (size_t I = Elems.size(); I != 0; --I) {
        Stk.push_back({Elems[I - 1], nullptr});
        if (I != 1)
          Stk.push_back({nullptr, ", "});
      }
      break;
    }
    case Tag::Tuple: {
      const TupleO *O = static_cast<const TupleO *>(V.O);
      S += "(";
      Stk.push_back({nullptr, ")"});
      for (size_t I = O->Elems.size(); I != 0; --I) {
        Stk.push_back({&O->Elems[I - 1], nullptr});
        if (I != 1)
          Stk.push_back({nullptr, ", "});
      }
      break;
    }
    case Tag::Closure:
      S += "<closure>";
      break;
    case Tag::TyClosure:
      S += "<tyclosure>";
      break;
    case Tag::Fix:
      S += "<fix>";
      break;
    default:
      S += "<unknown-value>";
      break;
    }
  }
  return S;
}

// Builtins; error strings byte-identical to systemf/Builtins.cpp.
[[noreturn]] inline void wrongKind(const char *Name) {
  fail(std::string("builtin `") + Name + "` applied to a value of the wrong kind");
}
inline bool isList(const Value &V) { return V.T == Tag::Nil || V.T == Tag::Cons; }
inline bool bothInt(const Value &A, const Value &B) {
  return A.T == Tag::Int && B.T == Tag::Int;
}
inline bool bothBool(const Value &A, const Value &B) {
  return A.T == Tag::Bool && B.T == Tag::Bool;
}

inline Value b_iadd(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("iadd");
  return mkInt((int64_t)((uint64_t)A.I + (uint64_t)B.I));
}
inline Value b_isub(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("isub");
  return mkInt((int64_t)((uint64_t)A.I - (uint64_t)B.I));
}
inline Value b_imult(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imult");
  return mkInt((int64_t)((uint64_t)A.I * (uint64_t)B.I));
}
inline Value b_imax(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imax");
  return mkInt(A.I > B.I ? A.I : B.I);
}
inline Value b_imin(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imin");
  return mkInt(A.I < B.I ? A.I : B.I);
}
inline Value b_idiv(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("idiv");
  if (B.I == 0)
    fail("division by zero");
  return mkInt(A.I / B.I);
}
inline Value b_imod(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imod");
  if (B.I == 0)
    fail("modulus by zero");
  return mkInt(A.I % B.I);
}
inline Value b_ineg(const Value &A) {
  if (A.T != Tag::Int)
    wrongKind("ineg");
  return mkInt((int64_t)(0 - (uint64_t)A.I));
}
inline Value b_ieq(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ieq");
  return mkBool(A.I == B.I);
}
inline Value b_ine(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ine");
  return mkBool(A.I != B.I);
}
inline Value b_ilt(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ilt");
  return mkBool(A.I < B.I);
}
inline Value b_ile(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ile");
  return mkBool(A.I <= B.I);
}
inline Value b_igt(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("igt");
  return mkBool(A.I > B.I);
}
inline Value b_ige(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ige");
  return mkBool(A.I >= B.I);
}
inline Value b_band(const Value &A, const Value &B) {
  if (!bothBool(A, B))
    wrongKind("band");
  return mkBool(A.I && B.I);
}
inline Value b_bor(const Value &A, const Value &B) {
  if (!bothBool(A, B))
    wrongKind("bor");
  return mkBool(A.I || B.I);
}
inline Value b_bnot(const Value &A) {
  if (A.T != Tag::Bool)
    wrongKind("bnot");
  return mkBool(!A.I);
}
inline Value b_cons(const Value &A, const Value &B) {
  if (!isList(B))
    wrongKind("cons");
  return mkCons(A, B);
}
inline Value b_car(const Value &A) {
  if (!isList(A))
    wrongKind("car");
  if (A.T == Tag::Nil)
    fail("`car` of the empty list");
  return static_cast<const ConsO *>(A.O)->Head;
}
inline Value b_cdr(const Value &A) {
  if (!isList(A))
    wrongKind("cdr");
  if (A.T == Tag::Nil)
    fail("`cdr` of the empty list");
  return static_cast<const ConsO *>(A.O)->Tail;
}
inline Value b_null(const Value &A) {
  if (!isList(A))
    wrongKind("null");
  return mkBool(A.T == Tag::Nil);
}

inline Value d_iadd(const Value *A) { return b_iadd(A[0], A[1]); }
inline Value d_isub(const Value *A) { return b_isub(A[0], A[1]); }
inline Value d_imult(const Value *A) { return b_imult(A[0], A[1]); }
inline Value d_imax(const Value *A) { return b_imax(A[0], A[1]); }
inline Value d_imin(const Value *A) { return b_imin(A[0], A[1]); }
inline Value d_idiv(const Value *A) { return b_idiv(A[0], A[1]); }
inline Value d_imod(const Value *A) { return b_imod(A[0], A[1]); }
inline Value d_ineg(const Value *A) { return b_ineg(A[0]); }
inline Value d_ieq(const Value *A) { return b_ieq(A[0], A[1]); }
inline Value d_ine(const Value *A) { return b_ine(A[0], A[1]); }
inline Value d_ilt(const Value *A) { return b_ilt(A[0], A[1]); }
inline Value d_ile(const Value *A) { return b_ile(A[0], A[1]); }
inline Value d_igt(const Value *A) { return b_igt(A[0], A[1]); }
inline Value d_ige(const Value *A) { return b_ige(A[0], A[1]); }
inline Value d_band(const Value *A) { return b_band(A[0], A[1]); }
inline Value d_bor(const Value *A) { return b_bor(A[0], A[1]); }
inline Value d_bnot(const Value *A) { return b_bnot(A[0]); }
inline Value d_cons(const Value *A) { return b_cons(A[0], A[1]); }
inline Value d_car(const Value *A) { return b_car(A[0]); }
inline Value d_cdr(const Value *A) { return b_cdr(A[0]); }
inline Value d_null(const Value *A) { return b_null(A[0]); }

struct BuiltinDesc {
  const char *Name;
  uint32_t Arity;
  Value (*F)(const Value *);
};
const BuiltinDesc Builtins[] = {
    {"iadd", 2, d_iadd}, {"isub", 2, d_isub}, {"imult", 2, d_imult},
    {"imax", 2, d_imax}, {"imin", 2, d_imin}, {"idiv", 2, d_idiv},
    {"imod", 2, d_imod}, {"ineg", 1, d_ineg}, {"ieq", 2, d_ieq},
    {"ine", 2, d_ine},   {"ilt", 2, d_ilt},   {"ile", 2, d_ile},
    {"igt", 2, d_igt},   {"ige", 2, d_ige},   {"band", 2, d_band},
    {"bor", 2, d_bor},   {"bnot", 1, d_bnot}, {"cons", 2, d_cons},
    {"car", 1, d_car},   {"cdr", 1, d_cdr},   {"null", 1, d_null},
};

const char *builtinName(int64_t Id) { return Builtins[Id].Name; }

// applyImpl, with `fix` trampolined: `(fix f)(v...)` unrolls to
// `(f (fix f))(v...)` in a loop — each unroll holds its applyImpl
// frame open (like the tree-walker's recursion) but consumes constant
// native stack, so fix chains cannot overflow independently of the
// program's own recursion.
//
// Unrolls are memoized per fix value (see FixMemoEntry): the step and
// depth checks stay on every path, so degenerate chains such as
// `fix (fun(f). f)` — whose unroll is itself — still abort with the
// shared diagnostics.
inline Value apply(State &S, Value F, const Value *Args, uint32_t N) {
  uint64_t Held = 0;
  while (F.T == Tag::Fix) {
    S.enter();
    ++Held;
    const Obj *Key = F.O;
    const FixMemoEntry *E = nullptr;
    if (Key == S.FixMemoKey) {
      E = S.FixMemoCached;
    } else {
      auto It = S.FixMemo.find(Key);
      if (It != S.FixMemo.end()) {
        S.FixMemoKey = Key;
        S.FixMemoCached = &It->second;
        E = &It->second;
      }
    }
    if (E) {
      // A hit must be indistinguishable from re-running the unroll:
      // charge its recorded steps and require its transient depth to
      // fit, so a run under a smaller budget aborts exactly as the
      // uncached computation would.
      S.Steps += E->StepCost;
      if (S.Steps > S.MaxSteps)
        fail("evaluation exceeded the step limit");
      if (S.Depth + E->DepthNeed > S.MaxDepth)
        fail("evaluation exceeded the recursion depth limit");
      noteDepth(S, S.Depth + E->DepthNeed);
      F = E->Unrolled;
      continue;
    }
    // Miss: meter the unroll so hits can replay its budget use —
    // steps by delta, transient depth by resetting the high-water
    // mark to the call site for the duration (restored to cover the
    // enclosing measurement afterwards).
    uint64_t StepsBefore = S.Steps;
    uint64_t DepthBefore = S.Depth;
    uint64_t SavedMax = S.MaxDepthSeen;
    S.MaxDepthSeen = DepthBefore;
    Value Self = F;
    Value Unrolled = apply(S, static_cast<const FixO *>(Self.O)->F, &Self, 1);
    uint64_t DepthNeed = S.MaxDepthSeen - DepthBefore;
    if (SavedMax > S.MaxDepthSeen)
      S.MaxDepthSeen = SavedMax;
    // The keepalive pins the fix value so its address cannot be reused
    // by a different allocation while the memo entry lives.  Pointers
    // into unordered_map values stay valid across rehashes.
    FixMemoEntry &Slot = S.FixMemo[Key];
    Slot.Keepalive = std::move(Self);
    Slot.Unrolled = Unrolled;
    Slot.StepCost = S.Steps - StepsBefore;
    Slot.DepthNeed = DepthNeed;
    S.FixMemoKey = Key;
    S.FixMemoCached = &Slot;
    F = std::move(Unrolled);
  }
  S.enter();
  Value R;
  switch (F.T) {
  case Tag::Closure: {
    const FnO *C = static_cast<const FnO *>(F.O);
    if (C->Arity != N)
      fail("function called with wrong arity");
    R = C->F(S, C->caps(), Args);
    break;
  }
  case Tag::Builtin: {
    const BuiltinDesc &B = Builtins[F.I];
    if (B.Arity != N)
      fail(std::string("builtin `") + B.Name + "` called with wrong arity");
    R = B.F(Args);
    break;
  }
  default:
    fail("attempt to call a non-function value `" + render(F) + "`");
  }
  S.leave();
  while (Held--)
    S.leave();
  return R;
}

// Type application: instantiating a type abstraction evaluates its
// body inside the TyApp frame (no apply frame — tree-walker parity);
// all other values (builtins like `nil`) pass through.
inline Value tyapply(State &S, const Value &F) {
  if (F.T == Tag::TyClosure) {
    const FnO *C = static_cast<const FnO *>(F.O);
    return C->F(S, C->caps(), nullptr);
  }
  return F;
}

inline Value proj(const Value &V, uint32_t Idx) {
  if (V.T != Tag::Tuple)
    fail("`nth` applied to a non-tuple value");
  const TupleO *O = static_cast<const TupleO *>(V.O);
  if (Idx >= O->Elems.size())
    fail("tuple index out of range at runtime");
  return O->Elems[Idx];
}

inline bool truth(const Value &V) {
  if (V.T != Tag::Bool)
    fail("`if` condition evaluated to a non-boolean");
  return V.I != 0;
}

} // namespace rt
)RT";

// main() and the thread harness; appended after the program functions.
const char *RuntimeMain = R"RT(
namespace rt {

struct RunArgs {
  uint64_t MaxSteps = 200000000ULL;
  uint64_t MaxDepth = 100000ULL;
  long long Repeat = 1;
  int Exit = 0;
  std::string Out;
  long long NsPerRun = 0;
};

static void *runProgram(void *P) {
  RunArgs *A = static_cast<RunArgs *>(P);
  try {
    std::string Rendered;
    struct timespec T0, T1;
    clock_gettime(CLOCK_MONOTONIC, &T0);
    for (long long I = 0; I < A->Repeat; ++I) {
      State S;
      S.MaxSteps = A->MaxSteps;
      S.MaxDepth = A->MaxDepth;
      Value V = fg_program(S);
      if (I + 1 == A->Repeat)
        Rendered = render(V);
    }
    clock_gettime(CLOCK_MONOTONIC, &T1);
    A->NsPerRun = ((T1.tv_sec - T0.tv_sec) * 1000000000LL +
                   (T1.tv_nsec - T0.tv_nsec)) /
                  A->Repeat;
    A->Out = Rendered;
    A->Exit = 0;
  } catch (const Err &E) {
    A->Out = E.Msg;
    A->Exit = 3;
  }
  return nullptr;
}

} // namespace rt

int main(int argc, char **argv) {
  rt::RunArgs A;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!strncmp(Arg, "--max-steps=", 12))
      A.MaxSteps = strtoull(Arg + 12, nullptr, 10);
    else if (!strncmp(Arg, "--max-depth=", 12))
      A.MaxDepth = strtoull(Arg + 12, nullptr, 10);
    else if (!strncmp(Arg, "--repeat=", 9))
      A.Repeat = strtoll(Arg + 9, nullptr, 10);
    else {
      fprintf(stderr, "usage: %s [--max-steps=N] [--max-depth=N] [--repeat=N]\n",
              argv[0]);
      return 2;
    }
  }
  if (A.Repeat < 1)
    A.Repeat = 1;
  // Run on a dedicated 512 MiB stack: deep program recursion (60k+
  // frames, like the VM supports) must not overflow the default stack.
  pthread_attr_t Attr;
  pthread_t Tid;
  bool Threaded = pthread_attr_init(&Attr) == 0 &&
                  pthread_attr_setstacksize(&Attr, 512ULL << 20) == 0 &&
                  pthread_create(&Tid, &Attr, rt::runProgram, &A) == 0;
  if (Threaded)
    pthread_join(Tid, nullptr);
  else
    rt::runProgram(&A);
  printf("%s\n", A.Out.c_str());
  if (A.Exit == 0 && A.Repeat > 1)
    printf("bench_ns_per_run=%lld\n", A.NsPerRun);
  return A.Exit;
}
)RT";

//===----------------------------------------------------------------------===//
// Free-variable analysis
//===----------------------------------------------------------------------===//

/// Appends the free term variables of \p T (in first-use order, for
/// deterministic emission) to \p Out.
void collectFreeVars(const Term *T, std::vector<std::string> &Bound,
                     std::vector<std::string> &Out,
                     std::set<std::string> &Seen) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
    return;
  case TermKind::Var: {
    const std::string &Name = cast<VarTerm>(T)->getName();
    for (size_t I = Bound.size(); I != 0; --I)
      if (Bound[I - 1] == Name)
        return;
    if (Seen.insert(Name).second)
      Out.push_back(Name);
    return;
  }
  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    size_t Mark = Bound.size();
    for (const ParamBinding &P : A->getParams())
      Bound.push_back(P.Name);
    collectFreeVars(A->getBody(), Bound, Out, Seen);
    Bound.resize(Mark);
    return;
  }
  case TermKind::TyAbs:
    collectFreeVars(cast<TyAbsTerm>(T)->getBody(), Bound, Out, Seen);
    return;
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    collectFreeVars(A->getFn(), Bound, Out, Seen);
    for (const Term *Arg : A->getArgs())
      collectFreeVars(Arg, Bound, Out, Seen);
    return;
  }
  case TermKind::TyApp:
    collectFreeVars(cast<TyAppTerm>(T)->getFn(), Bound, Out, Seen);
    return;
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    collectFreeVars(L->getInit(), Bound, Out, Seen);
    Bound.push_back(L->getName());
    collectFreeVars(L->getBody(), Bound, Out, Seen);
    Bound.pop_back();
    return;
  }
  case TermKind::Tuple:
    for (const Term *E : cast<TupleTerm>(T)->getElements())
      collectFreeVars(E, Bound, Out, Seen);
    return;
  case TermKind::Nth:
    collectFreeVars(cast<NthTerm>(T)->getTuple(), Bound, Out, Seen);
    return;
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    collectFreeVars(I->getCond(), Bound, Out, Seen);
    collectFreeVars(I->getThen(), Bound, Out, Seen);
    collectFreeVars(I->getElse(), Bound, Out, Seen);
    return;
  }
  case TermKind::Fix:
    collectFreeVars(cast<FixTerm>(T)->getOperand(), Bound, Out, Seen);
    return;
  }
}

std::vector<std::string> freeVars(const Term *T) {
  std::vector<std::string> Bound, Out;
  std::set<std::string> Seen;
  collectFreeVars(T, Bound, Out, Seen);
  return Out;
}

//===----------------------------------------------------------------------===//
// Emitter
//===----------------------------------------------------------------------===//

class Emitter {
public:
  explicit Emitter(const sf::Prelude &P) {
    for (const auto &E : P.Entries)
      PreludeNames.insert(E.Name);
  }

  aot::EmittedProgram emit(const Term *T);

private:
  /// One function being emitted.  Scope maps a System F name to the
  /// C++ expression that reads it in this function (`A[i]` argument,
  /// `C[j]` capture, a `vN` local, or a pure constructor expression);
  /// shadowing resolves back-to-front.
  ///
  /// PendingK/Stairs accumulate the current coalesced charge segment:
  /// PendingK tree-walker charges not yet accounted, Stairs the
  /// prefix-maxima staircase of their depth offsets (1-based index
  /// within the segment, offset from D0).  flushCharges() materializes
  /// the segment before any abort point.
  struct FnCtx {
    std::vector<std::pair<std::string, std::string>> Scope;
    std::string Body;
    std::string Indent = "  ";
    uint64_t PendingK = 0;
    std::vector<std::pair<uint64_t, unsigned>> Stairs;
    bool WroteDepth = false;
  };

  std::set<std::string> PreludeNames;
  std::vector<std::string> Funcs; ///< Completed function definitions.
  unsigned NumFns = 0;
  unsigned NumVars = 0;
  unsigned NumSegs = 0;
  std::string Error;

  std::string freshVar() { return "v" + std::to_string(NumVars++); }

  void line(FnCtx &F, const std::string &S) {
    F.Body += F.Indent + S + "\n";
  }

  /// Adds one tree-walker charge at depth offset \p Off to the pending
  /// segment.
  void chargeNode(FnCtx &F, unsigned Off) {
    ++F.PendingK;
    if (F.Stairs.empty() || Off > F.Stairs.back().second)
      F.Stairs.emplace_back(F.PendingK, Off);
  }

  /// Emits the pending charge segment (if any).  Must run before every
  /// emitted operation that can fail or observe S.Steps/S.Depth: calls,
  /// builtins, proj, truth, branch ends, and the function epilogue.
  void flushCharges(FnCtx &F) {
    if (!F.PendingK)
      return;
    if (F.Stairs.size() == 1) {
      line(F, "rt::charge1(S, " + std::to_string(F.PendingK) + ", D0 + " +
                  std::to_string(F.Stairs[0].second) + ");");
      F.PendingK = 0;
      F.Stairs.clear();
      return;
    }
    std::string Arr = "sg" + std::to_string(NumSegs++);
    std::string Recs;
    for (const auto &R : F.Stairs)
      Recs += "{" + std::to_string(R.first) + "u, " +
              std::to_string(R.second) + "u}, ";
    line(F, "static const rt::SegRec " + Arr + "[] = {" + Recs + "};");
    line(F, "rt::charge(S, " + std::to_string(F.PendingK) + ", D0, " + Arr +
                ", " + std::to_string(F.Stairs.size()) + ");");
    F.PendingK = 0;
    F.Stairs.clear();
  }

  /// Sets S.Depth to the tree-walker's value inside the frame of the
  /// node at offset \p Off (i.e. D0 + Off + 1) — required before
  /// apply/tyapply so the callee observes the right depth.
  void storeDepth(FnCtx &F, unsigned Off) {
    line(F, "S.Depth = D0 + " + std::to_string(Off + 1) + ";");
    F.WroteDepth = true;
  }

  /// True when \p E is a function-local temporary (`vN`) that no scope
  /// binding can re-reference — its single remaining use may move.
  bool ownedTemp(const FnCtx &F, const std::string &E) {
    if (E.size() < 2 || E[0] != 'v')
      return false;
    for (size_t I = 1; I != E.size(); ++I)
      if (E[I] < '0' || E[I] > '9')
        return false;
    for (const auto &B : F.Scope)
      if (B.second == E)
        return false;
    return true;
  }

  /// \p E, wrapped in std::move when this is provably its last use.
  std::string mv(const FnCtx &F, const std::string &E) {
    return ownedTemp(F, E) ? "std::move(" + E + ")" : E;
  }

  /// The C++ expression for \p Name, or "" if it is not in scope and
  /// not a lowerable builtin.
  std::string resolve(const FnCtx &F, const std::string &Name) {
    for (size_t I = F.Scope.size(); I != 0; --I)
      if (F.Scope[I - 1].first == Name)
        return F.Scope[I - 1].second;
    if (PreludeNames.count(Name)) {
      if (Name == "nil")
        return "rt::mkNil()";
      int Id = builtinId(Name);
      if (Id >= 0)
        return "rt::mkBuiltin(" + std::to_string(Id) + ")";
      Error = "aot: builtin `" + Name + "` has no C++ lowering";
      return std::string();
    }
    Error = "aot: unbound variable `" + Name + "` at emit time";
    return std::string();
  }

  /// When \p Fn is an (possibly type-applied) unshadowed builtin
  /// function reference, returns its id and the number of TyApp
  /// wrappers; id -1 otherwise.  Such calls lower to a direct C++ call.
  int directBuiltin(const FnCtx &F, const Term *Fn, unsigned &TyWraps) {
    TyWraps = 0;
    while (const auto *TA = dyn_cast<TyAppTerm>(Fn)) {
      Fn = TA->getFn();
      ++TyWraps;
    }
    const auto *V = dyn_cast<VarTerm>(Fn);
    if (!V)
      return -1;
    for (size_t I = F.Scope.size(); I != 0; --I)
      if (F.Scope[I - 1].first == V->getName())
        return -1; // Shadowed: a local, not the builtin.
    if (!PreludeNames.count(V->getName()))
      return -1;
    return builtinId(V->getName());
  }

  /// Emits \p T into \p F at depth offset \p Off; returns the C++
  /// expression for the result — a `vN` local for materialized nodes,
  /// or the scope/constructor expression itself for variables and
  /// literals (pure and idempotent, so sinking them to their use site
  /// is unobservable).  Statements are flat: locals stay visible for
  /// the rest of the enclosing block.
  std::string emitTerm(const Term *T, FnCtx &F, unsigned Off);

  /// Emits a new function for body \p Body with \p Params bound to the
  /// argument array and \p Caps to the capture array; returns its name.
  std::string emitFunction(const Term *Body,
                           const std::vector<std::string> &Params,
                           const std::vector<std::string> &Caps);
};

std::string Emitter::emitFunction(const Term *Body,
                                  const std::vector<std::string> &Params,
                                  const std::vector<std::string> &Caps) {
  std::string Name = "fn_" + std::to_string(NumFns++);
  FnCtx F;
  for (size_t I = 0; I != Caps.size(); ++I)
    F.Scope.emplace_back(Caps[I], "C[" + std::to_string(I) + "]");
  for (size_t I = 0; I != Params.size(); ++I)
    F.Scope.emplace_back(Params[I], "A[" + std::to_string(I) + "]");
  std::string R = emitTerm(Body, F, 0);
  if (!Error.empty())
    return Name;
  flushCharges(F);
  if (F.WroteDepth)
    line(F, "S.Depth = D0;");
  std::string Def = "static rt::Value " + Name +
                    "(rt::State &S, const rt::Value *C, const rt::Value *A) "
                    "{\n  (void)C;\n  (void)A;\n"
                    "  const uint64_t D0 = S.Depth;\n";
  Def += F.Body;
  Def += "  return " + mv(F, R) + ";\n}\n";
  Funcs.push_back(std::move(Def));
  return Name;
}

std::string Emitter::emitTerm(const Term *T, FnCtx &F, unsigned Off) {
  if (!Error.empty())
    return std::string();
  switch (T->getKind()) {
  case TermKind::IntLit: {
    int64_t I = cast<IntLit>(T)->getValue();
    std::string Lit = I == INT64_MIN
                          ? std::string("(-INT64_C(9223372036854775807) - 1)")
                          : "INT64_C(" + std::to_string(I) + ")";
    chargeNode(F, Off);
    return "rt::mkInt(" + Lit + ")";
  }
  case TermKind::BoolLit:
    chargeNode(F, Off);
    return cast<BoolLit>(T)->getValue() ? "rt::mkBool(true)"
                                        : "rt::mkBool(false)";

  case TermKind::Var: {
    std::string E = resolve(F, cast<VarTerm>(T)->getName());
    if (!Error.empty())
      return std::string();
    chargeNode(F, Off);
    return E;
  }

  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    std::vector<std::string> Params;
    for (const ParamBinding &P : A->getParams())
      Params.push_back(P.Name);
    // Captures: every free variable of the lambda that is bound in the
    // enclosing scope.  Builtins resolve globally and need no slot.
    std::vector<std::string> Caps, CapExprs;
    for (const std::string &FV : freeVars(T)) {
      for (size_t I = F.Scope.size(); I != 0; --I)
        if (F.Scope[I - 1].first == FV) {
          Caps.push_back(FV);
          CapExprs.push_back(F.Scope[I - 1].second);
          break;
        }
    }
    std::string Fn = emitFunction(A->getBody(), Params, Caps);
    if (!Error.empty())
      return std::string();
    chargeNode(F, Off);
    std::string V = freshVar();
    std::string Args = "&" + Fn + ", " + std::to_string(Params.size());
    for (const std::string &E : CapExprs)
      Args += ", " + E;
    line(F, "rt::Value " + V + " = rt::mkClosure(" + Args + ");");
    return V;
  }

  case TermKind::TyAbs: {
    const auto *A = cast<TyAbsTerm>(T);
    std::vector<std::string> Caps, CapExprs;
    for (const std::string &FV : freeVars(T)) {
      for (size_t I = F.Scope.size(); I != 0; --I)
        if (F.Scope[I - 1].first == FV) {
          Caps.push_back(FV);
          CapExprs.push_back(F.Scope[I - 1].second);
          break;
        }
    }
    std::string Fn = emitFunction(A->getBody(), {}, Caps);
    if (!Error.empty())
      return std::string();
    chargeNode(F, Off);
    std::string V = freshVar();
    std::string Args = "&" + Fn;
    for (const std::string &E : CapExprs)
      Args += ", " + E;
    line(F, "rt::Value " + V + " = rt::mkTyClosure(" + Args + ");");
    return V;
  }

  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    unsigned TyWraps = 0;
    int Direct = directBuiltin(F, A->getFn(), TyWraps);
    if (Direct >= 0 &&
        BuiltinTable[Direct].Arity == A->getArgs().size()) {
      // Statically-resolved builtin: direct call, with the charge
      // sequence the tree-walker would make (App frame, one frame per
      // TyApp wrapper, the Var frame, the argument subtrees, then the
      // applyImpl frame).
      chargeNode(F, Off);
      for (unsigned I = 1; I <= TyWraps; ++I)
        chargeNode(F, Off + I);
      chargeNode(F, Off + TyWraps + 1);
      std::vector<std::string> Args;
      for (const Term *Arg : A->getArgs())
        Args.push_back(emitTerm(Arg, F, Off + 1));
      if (!Error.empty())
        return std::string();
      chargeNode(F, Off + 1);
      flushCharges(F);
      std::string V = freshVar();
      std::string ArgList;
      for (const std::string &Arg : Args)
        ArgList += (ArgList.empty() ? "" : ", ") + Arg;
      line(F, "rt::Value " + V + " = rt::b_" +
                  std::string(BuiltinTable[Direct].Name) + "(" + ArgList +
                  ");");
      return V;
    }

    chargeNode(F, Off);
    std::string Fn = emitTerm(A->getFn(), F, Off + 1);
    std::vector<std::string> Args;
    for (const Term *Arg : A->getArgs())
      Args.push_back(emitTerm(Arg, F, Off + 1));
    if (!Error.empty())
      return std::string();
    flushCharges(F);
    storeDepth(F, Off);
    std::string V = freshVar();
    line(F, "rt::Value " + V + ";");
    if (Args.empty()) {
      line(F, V + " = rt::apply(S, " + mv(F, Fn) + ", nullptr, 0);");
    } else {
      std::string ArgList;
      for (const std::string &Arg : Args)
        ArgList += (ArgList.empty() ? "" : ", ") + mv(F, Arg);
      line(F, "{");
      line(F, "  rt::Value Ar[] = {" + ArgList + "};");
      line(F, "  " + V + " = rt::apply(S, " + mv(F, Fn) + ", Ar, " +
                  std::to_string(Args.size()) + ");");
      line(F, "}");
    }
    return V;
  }

  case TermKind::TyApp: {
    const auto *A = cast<TyAppTerm>(T);
    chargeNode(F, Off);
    std::string Fn = emitTerm(A->getFn(), F, Off + 1);
    if (!Error.empty())
      return std::string();
    flushCharges(F);
    storeDepth(F, Off);
    std::string V = freshVar();
    line(F, "rt::Value " + V + " = rt::tyapply(S, " + Fn + ");");
    return V;
  }

  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    chargeNode(F, Off);
    std::string Init = emitTerm(L->getInit(), F, Off + 1);
    if (!Error.empty())
      return std::string();
    F.Scope.emplace_back(L->getName(), Init);
    std::string Body = emitTerm(L->getBody(), F, Off + 1);
    F.Scope.pop_back();
    if (!Error.empty())
      return std::string();
    return Body;
  }

  case TermKind::Tuple: {
    const auto *Tu = cast<TupleTerm>(T);
    chargeNode(F, Off);
    std::vector<std::string> Elems;
    for (const Term *E : Tu->getElements())
      Elems.push_back(emitTerm(E, F, Off + 1));
    if (!Error.empty())
      return std::string();
    std::string V = freshVar();
    std::string List;
    for (const std::string &E : Elems)
      List += (List.empty() ? "" : ", ") + mv(F, E);
    line(F, "rt::Value " + V + " = rt::mkTuple(" + List + ");");
    return V;
  }

  case TermKind::Nth: {
    const auto *N = cast<NthTerm>(T);
    chargeNode(F, Off);
    std::string Tu = emitTerm(N->getTuple(), F, Off + 1);
    if (!Error.empty())
      return std::string();
    flushCharges(F);
    std::string V = freshVar();
    line(F, "rt::Value " + V + " = rt::proj(" + Tu + ", " +
                std::to_string(N->getIndex()) + ");");
    return V;
  }

  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    chargeNode(F, Off);
    std::string Cond = emitTerm(I->getCond(), F, Off + 1);
    if (!Error.empty())
      return std::string();
    flushCharges(F);
    std::string V = freshVar();
    line(F, "rt::Value " + V + ";");
    line(F, "if (rt::truth(" + Cond + ")) {");
    std::string Saved = F.Indent;
    F.Indent += "  ";
    std::string Then = emitTerm(I->getThen(), F, Off + 1);
    if (Error.empty()) {
      flushCharges(F);
      line(F, V + " = " + mv(F, Then) + ";");
    }
    F.Indent = Saved;
    line(F, "} else {");
    F.Indent += "  ";
    std::string Else = emitTerm(I->getElse(), F, Off + 1);
    if (Error.empty()) {
      flushCharges(F);
      line(F, V + " = " + mv(F, Else) + ";");
    }
    F.Indent = Saved;
    line(F, "}");
    if (!Error.empty())
      return std::string();
    return V;
  }

  case TermKind::Fix: {
    const auto *Fx = cast<FixTerm>(T);
    chargeNode(F, Off);
    std::string Op = emitTerm(Fx->getOperand(), F, Off + 1);
    if (!Error.empty())
      return std::string();
    std::string V = freshVar();
    line(F, "rt::Value " + V + " = rt::mkFix(" + mv(F, Op) + ");");
    return V;
  }
  }
  Error = "aot: unknown term kind";
  return std::string();
}

aot::EmittedProgram Emitter::emit(const Term *T) {
  FnCtx Main;
  std::string R = emitTerm(T, Main, 0);
  aot::EmittedProgram P;
  if (!Error.empty()) {
    P.Error = Error;
    return P;
  }
  flushCharges(Main);
  if (Main.WroteDepth)
    line(Main, "S.Depth = D0;");
  std::string Out = "// Generated by fgc --backend=aot (emitter version " +
                    std::to_string(aot::EmitterVersion) + "). Do not edit.\n";
  Out += RuntimePrelude;
  Out += "\nnamespace rt {\n\nstatic Value fg_program(State &S);\n";
  for (unsigned I = 0; I != NumFns; ++I)
    Out += "static Value fn_" + std::to_string(I) +
           "(State &S, const Value *C, const Value *A);\n";
  Out += "\n} // namespace rt\n\nnamespace rt {\n\n";
  for (const std::string &Def : Funcs)
    Out += Def + "\n";
  Out += "static Value fg_program(State &S) {\n";
  Out += "  const uint64_t D0 = S.Depth;\n";
  Out += Main.Body;
  Out += "  return " + mv(Main, R) + ";\n}\n\n} // namespace rt\n";
  Out += RuntimeMain;
  P.Cpp = std::move(Out);
  return P;
}

} // namespace

aot::EmittedProgram fg::aot::emitCpp(const sf::Term *T,
                                     const sf::Prelude &Prelude) {
  Emitter E(Prelude);
  return E.emit(T);
}
