//===- aot/CppEmitter.cpp - System F to C++17 transpiler ------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
//
// Code shape
// ----------
// The program becomes one translation unit:
//
//   * a runtime prelude (tagged Value with an intrusive refcount, the
//     builtin table, apply/tyapply, a renderer matching valueToString),
//   * one `static Value fn_K(State&, const Value *C, const Value *A)`
//     per Abs/TyAbs, where C is the flat capture array and A the
//     argument array — closures are just {fn pointer, captures},
//   * `static Value fg_program(State&)` for the top-level term,
//   * a main() that parses --max-steps/--max-depth/--repeat, runs the
//     program on a 512 MiB pthread stack (deep recursion), prints the
//     rendered value (exit 0) or the runtime error (exit 3).
//
// Statements are emitted flat — one fresh `Value vN` per term node at
// the current block level, never a nested block per node — because a
// 1000-deep cons chain would otherwise exceed the host compiler's
// bracket-nesting limit.  Only `if` opens blocks (its branches really
// are conditionally evaluated).
//
// Abort parity
// ------------
// Every emitted node charges the evaluator's budget exactly like
// Eval.cpp does: S.enter() is `++Steps > MaxSteps` then
// `Depth >= MaxDepth` then ++Depth, paired with S.leave() where the
// tree-walker's DepthGuard would release.  applyImpl's frame lives in
// rt::apply; a TyApp instantiation evaluates the body inside the TyApp
// frame with no apply frame, exactly like the tree-walker.  This is
// what makes abort diagnostics byte-identical across backends.
//
//===----------------------------------------------------------------------===//

#include "aot/CppEmitter.h"
#include <cstdint>
#include <set>
#include <vector>

using namespace fg;
using namespace fg::sf;

const unsigned fg::aot::EmitterVersion = 1;

namespace {

//===----------------------------------------------------------------------===//
// Builtin table
//===----------------------------------------------------------------------===//

// Must match the `Builtins[]` table in the runtime prelude below, in
// order.  `nil` is not here: it is a plain value, not a function.
struct BuiltinRow {
  const char *Name;
  unsigned Arity;
};
const BuiltinRow BuiltinTable[] = {
    {"iadd", 2}, {"isub", 2}, {"imult", 2}, {"imax", 2}, {"imin", 2},
    {"idiv", 2}, {"imod", 2}, {"ineg", 1},  {"ieq", 2},  {"ine", 2},
    {"ilt", 2},  {"ile", 2},  {"igt", 2},   {"ige", 2},  {"band", 2},
    {"bor", 2},  {"bnot", 1}, {"cons", 2},  {"car", 1},  {"cdr", 1},
    {"null", 1},
};
const int NumBuiltins = sizeof(BuiltinTable) / sizeof(BuiltinTable[0]);

int builtinId(const std::string &Name) {
  for (int I = 0; I != NumBuiltins; ++I)
    if (Name == BuiltinTable[I].Name)
      return I;
  return -1;
}

//===----------------------------------------------------------------------===//
// Runtime prelude
//===----------------------------------------------------------------------===//

const char *RuntimePrelude = R"RT(#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>
#include <pthread.h>

namespace rt {

// Abort diagnostics; byte-identical to systemf/Eval.cpp.
struct Err {
  std::string Msg;
};

[[noreturn]] inline void fail(std::string Msg) { throw Err{std::move(Msg)}; }

// The evaluation budget.  enter()/leave() mirror the tree-walking
// evaluator's per-frame accounting (steps check, then depth check,
// then DepthGuard) so limit aborts happen at the identical frame.
struct State {
  uint64_t Steps = 0;
  uint64_t Depth = 0;
  uint64_t MaxSteps = 200000000ULL;
  uint64_t MaxDepth = 100000ULL;

  void enter() {
    if (++Steps > MaxSteps)
      fail("evaluation exceeded the step limit");
    if (Depth >= MaxDepth)
      fail("evaluation exceeded the recursion depth limit");
    ++Depth;
  }
  void leave() { --Depth; }
};

enum class Tag : uint8_t {
  Int,
  Bool,
  Builtin,
  Nil,
  // Heap tags from here on.
  Tuple,
  Cons,
  Closure,
  TyClosure,
  Fix,
};

inline bool heapTag(Tag T) { return T >= Tag::Tuple; }

// Values are immutable and acyclic, so a plain (non-atomic: the
// program is single-threaded) intrusive refcount reclaims everything —
// the generated binaries run leak-clean under LeakSanitizer in CI.
struct Obj {
  uint32_t RC = 1;
};

struct State;
struct Value;
using Fn = Value (*)(State &, const Value *C, const Value *A);

void destroy(Obj *O, Tag T);

struct Value {
  Tag T = Tag::Int;
  int64_t I = 0;
  Obj *O = nullptr;

  Value() = default;
  Value(const Value &V) : T(V.T), I(V.I), O(V.O) {
    if (O && heapTag(T))
      ++O->RC;
  }
  Value(Value &&V) noexcept : T(V.T), I(V.I), O(V.O) {
    V.T = Tag::Int;
    V.O = nullptr;
  }
  ~Value() { release(); }
  Value &operator=(const Value &V) {
    Value Tmp(V);
    return *this = static_cast<Value &&>(Tmp);
  }
  Value &operator=(Value &&V) noexcept {
    if (this != &V) {
      release();
      T = V.T;
      I = V.I;
      O = V.O;
      V.T = Tag::Int;
      V.O = nullptr;
    }
    return *this;
  }
  void release() {
    if (O && heapTag(T) && --O->RC == 0)
      destroy(O, T);
    O = nullptr;
  }
};

struct TupleO : Obj {
  std::vector<Value> Elems;
};
struct ConsO : Obj {
  Value Head;
  Value Tail; // Nil or Cons.
};
struct ClosureO : Obj {
  Fn F;
  uint32_t Arity;
  std::vector<Value> Caps;
};
struct TyClosureO : Obj {
  Fn F;
  std::vector<Value> Caps;
};
struct FixO : Obj {
  Value F;
};

// Long lists must not be reclaimed by recursive ~Value chaining; walk
// the spine iteratively, neutralizing each tail before deleting.
inline void destroyList(ConsO *C) {
  while (C) {
    ConsO *Next = nullptr;
    if (C->Tail.T == Tag::Cons) {
      if (--C->Tail.O->RC == 0)
        Next = static_cast<ConsO *>(C->Tail.O);
      C->Tail.T = Tag::Int;
      C->Tail.O = nullptr;
    }
    delete C;
    C = Next;
  }
}

inline void destroy(Obj *O, Tag T) {
  switch (T) {
  case Tag::Tuple:
    delete static_cast<TupleO *>(O);
    break;
  case Tag::Cons:
    destroyList(static_cast<ConsO *>(O));
    break;
  case Tag::Closure:
    delete static_cast<ClosureO *>(O);
    break;
  case Tag::TyClosure:
    delete static_cast<TyClosureO *>(O);
    break;
  case Tag::Fix:
    delete static_cast<FixO *>(O);
    break;
  default:
    break;
  }
}

inline Value mkInt(int64_t I) {
  Value V;
  V.T = Tag::Int;
  V.I = I;
  return V;
}
inline Value mkBool(bool B) {
  Value V;
  V.T = Tag::Bool;
  V.I = B;
  return V;
}
inline Value mkBuiltin(int64_t Id) {
  Value V;
  V.T = Tag::Builtin;
  V.I = Id;
  return V;
}
inline Value mkNil() {
  Value V;
  V.T = Tag::Nil;
  return V;
}
inline Value mkHeap(Tag T, Obj *O) {
  Value V;
  V.T = T;
  V.O = O;
  return V;
}
inline Value mkTuple(std::vector<Value> Elems) {
  TupleO *O = new TupleO;
  O->Elems = std::move(Elems);
  return mkHeap(Tag::Tuple, O);
}
inline Value mkCons(Value Head, Value Tail) {
  ConsO *O = new ConsO;
  O->Head = std::move(Head);
  O->Tail = std::move(Tail);
  return mkHeap(Tag::Cons, O);
}
inline Value mkClosure(Fn F, uint32_t Arity, std::vector<Value> Caps) {
  ClosureO *O = new ClosureO;
  O->F = F;
  O->Arity = Arity;
  O->Caps = std::move(Caps);
  return mkHeap(Tag::Closure, O);
}
inline Value mkTyClosure(Fn F, std::vector<Value> Caps) {
  TyClosureO *O = new TyClosureO;
  O->F = F;
  O->Caps = std::move(Caps);
  return mkHeap(Tag::TyClosure, O);
}
inline Value mkFix(Value F) {
  FixO *O = new FixO;
  O->F = std::move(F);
  return mkHeap(Tag::Fix, O);
}

const char *builtinName(int64_t Id);

// Rendering; byte-identical to sf::valueToString.
inline std::string render(const Value &V) {
  switch (V.T) {
  case Tag::Int:
    return std::to_string(V.I);
  case Tag::Bool:
    return V.I ? "true" : "false";
  case Tag::Builtin:
    return std::string("<builtin ") + builtinName(V.I) + ">";
  case Tag::Nil:
  case Tag::Cons: {
    std::string S = "[";
    const Value *L = &V;
    bool First = true;
    while (L->T == Tag::Cons) {
      const ConsO *C = static_cast<const ConsO *>(L->O);
      if (!First)
        S += ", ";
      First = false;
      S += render(C->Head);
      L = &C->Tail;
    }
    return S + "]";
  }
  case Tag::Tuple: {
    std::string S = "(";
    const TupleO *O = static_cast<const TupleO *>(V.O);
    for (size_t I = 0; I != O->Elems.size(); ++I) {
      if (I)
        S += ", ";
      S += render(O->Elems[I]);
    }
    return S + ")";
  }
  case Tag::Closure:
    return "<closure>";
  case Tag::TyClosure:
    return "<tyclosure>";
  case Tag::Fix:
    return "<fix>";
  }
  return "<unknown-value>";
}

// Builtins; error strings byte-identical to systemf/Builtins.cpp.
[[noreturn]] inline void wrongKind(const char *Name) {
  fail(std::string("builtin `") + Name + "` applied to a value of the wrong kind");
}
inline bool isList(const Value &V) { return V.T == Tag::Nil || V.T == Tag::Cons; }
inline bool bothInt(const Value &A, const Value &B) {
  return A.T == Tag::Int && B.T == Tag::Int;
}
inline bool bothBool(const Value &A, const Value &B) {
  return A.T == Tag::Bool && B.T == Tag::Bool;
}

inline Value b_iadd(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("iadd");
  return mkInt((int64_t)((uint64_t)A.I + (uint64_t)B.I));
}
inline Value b_isub(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("isub");
  return mkInt((int64_t)((uint64_t)A.I - (uint64_t)B.I));
}
inline Value b_imult(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imult");
  return mkInt((int64_t)((uint64_t)A.I * (uint64_t)B.I));
}
inline Value b_imax(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imax");
  return mkInt(A.I > B.I ? A.I : B.I);
}
inline Value b_imin(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imin");
  return mkInt(A.I < B.I ? A.I : B.I);
}
inline Value b_idiv(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("idiv");
  if (B.I == 0)
    fail("division by zero");
  return mkInt(A.I / B.I);
}
inline Value b_imod(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("imod");
  if (B.I == 0)
    fail("modulus by zero");
  return mkInt(A.I % B.I);
}
inline Value b_ineg(const Value &A) {
  if (A.T != Tag::Int)
    wrongKind("ineg");
  return mkInt((int64_t)(0 - (uint64_t)A.I));
}
inline Value b_ieq(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ieq");
  return mkBool(A.I == B.I);
}
inline Value b_ine(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ine");
  return mkBool(A.I != B.I);
}
inline Value b_ilt(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ilt");
  return mkBool(A.I < B.I);
}
inline Value b_ile(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ile");
  return mkBool(A.I <= B.I);
}
inline Value b_igt(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("igt");
  return mkBool(A.I > B.I);
}
inline Value b_ige(const Value &A, const Value &B) {
  if (!bothInt(A, B))
    wrongKind("ige");
  return mkBool(A.I >= B.I);
}
inline Value b_band(const Value &A, const Value &B) {
  if (!bothBool(A, B))
    wrongKind("band");
  return mkBool(A.I && B.I);
}
inline Value b_bor(const Value &A, const Value &B) {
  if (!bothBool(A, B))
    wrongKind("bor");
  return mkBool(A.I || B.I);
}
inline Value b_bnot(const Value &A) {
  if (A.T != Tag::Bool)
    wrongKind("bnot");
  return mkBool(!A.I);
}
inline Value b_cons(const Value &A, const Value &B) {
  if (!isList(B))
    wrongKind("cons");
  return mkCons(A, B);
}
inline Value b_car(const Value &A) {
  if (!isList(A))
    wrongKind("car");
  if (A.T == Tag::Nil)
    fail("`car` of the empty list");
  return static_cast<const ConsO *>(A.O)->Head;
}
inline Value b_cdr(const Value &A) {
  if (!isList(A))
    wrongKind("cdr");
  if (A.T == Tag::Nil)
    fail("`cdr` of the empty list");
  return static_cast<const ConsO *>(A.O)->Tail;
}
inline Value b_null(const Value &A) {
  if (!isList(A))
    wrongKind("null");
  return mkBool(A.T == Tag::Nil);
}

inline Value d_iadd(const Value *A) { return b_iadd(A[0], A[1]); }
inline Value d_isub(const Value *A) { return b_isub(A[0], A[1]); }
inline Value d_imult(const Value *A) { return b_imult(A[0], A[1]); }
inline Value d_imax(const Value *A) { return b_imax(A[0], A[1]); }
inline Value d_imin(const Value *A) { return b_imin(A[0], A[1]); }
inline Value d_idiv(const Value *A) { return b_idiv(A[0], A[1]); }
inline Value d_imod(const Value *A) { return b_imod(A[0], A[1]); }
inline Value d_ineg(const Value *A) { return b_ineg(A[0]); }
inline Value d_ieq(const Value *A) { return b_ieq(A[0], A[1]); }
inline Value d_ine(const Value *A) { return b_ine(A[0], A[1]); }
inline Value d_ilt(const Value *A) { return b_ilt(A[0], A[1]); }
inline Value d_ile(const Value *A) { return b_ile(A[0], A[1]); }
inline Value d_igt(const Value *A) { return b_igt(A[0], A[1]); }
inline Value d_ige(const Value *A) { return b_ige(A[0], A[1]); }
inline Value d_band(const Value *A) { return b_band(A[0], A[1]); }
inline Value d_bor(const Value *A) { return b_bor(A[0], A[1]); }
inline Value d_bnot(const Value *A) { return b_bnot(A[0]); }
inline Value d_cons(const Value *A) { return b_cons(A[0], A[1]); }
inline Value d_car(const Value *A) { return b_car(A[0]); }
inline Value d_cdr(const Value *A) { return b_cdr(A[0]); }
inline Value d_null(const Value *A) { return b_null(A[0]); }

struct BuiltinDesc {
  const char *Name;
  uint32_t Arity;
  Value (*F)(const Value *);
};
const BuiltinDesc Builtins[] = {
    {"iadd", 2, d_iadd}, {"isub", 2, d_isub}, {"imult", 2, d_imult},
    {"imax", 2, d_imax}, {"imin", 2, d_imin}, {"idiv", 2, d_idiv},
    {"imod", 2, d_imod}, {"ineg", 1, d_ineg}, {"ieq", 2, d_ieq},
    {"ine", 2, d_ine},   {"ilt", 2, d_ilt},   {"ile", 2, d_ile},
    {"igt", 2, d_igt},   {"ige", 2, d_ige},   {"band", 2, d_band},
    {"bor", 2, d_bor},   {"bnot", 1, d_bnot}, {"cons", 2, d_cons},
    {"car", 1, d_car},   {"cdr", 1, d_cdr},   {"null", 1, d_null},
};

const char *builtinName(int64_t Id) { return Builtins[Id].Name; }

// applyImpl, with `fix` trampolined: `(fix f)(v...)` unrolls to
// `(f (fix f))(v...)` in a loop — each unroll holds its applyImpl
// frame open (like the tree-walker's recursion) but consumes constant
// native stack, so fix chains cannot overflow independently of the
// program's own recursion.
inline Value apply(State &S, Value F, const Value *Args, uint32_t N) {
  uint64_t Held = 0;
  while (F.T == Tag::Fix) {
    S.enter();
    ++Held;
    Value Self = F;
    F = apply(S, static_cast<const FixO *>(Self.O)->F, &Self, 1);
  }
  S.enter();
  Value R;
  switch (F.T) {
  case Tag::Closure: {
    const ClosureO *C = static_cast<const ClosureO *>(F.O);
    if (C->Arity != N)
      fail("function called with wrong arity");
    R = C->F(S, C->Caps.data(), Args);
    break;
  }
  case Tag::Builtin: {
    const BuiltinDesc &B = Builtins[F.I];
    if (B.Arity != N)
      fail(std::string("builtin `") + B.Name + "` called with wrong arity");
    R = B.F(Args);
    break;
  }
  default:
    fail("attempt to call a non-function value `" + render(F) + "`");
  }
  S.leave();
  while (Held--)
    S.leave();
  return R;
}

// Type application: instantiating a type abstraction evaluates its
// body inside the TyApp frame (no apply frame — tree-walker parity);
// all other values (builtins like `nil`) pass through.
inline Value tyapply(State &S, const Value &F) {
  if (F.T == Tag::TyClosure) {
    const TyClosureO *C = static_cast<const TyClosureO *>(F.O);
    return C->F(S, C->Caps.data(), nullptr);
  }
  return F;
}

inline Value proj(const Value &V, uint32_t Idx) {
  if (V.T != Tag::Tuple)
    fail("`nth` applied to a non-tuple value");
  const TupleO *O = static_cast<const TupleO *>(V.O);
  if (Idx >= O->Elems.size())
    fail("tuple index out of range at runtime");
  return O->Elems[Idx];
}

inline bool truth(const Value &V) {
  if (V.T != Tag::Bool)
    fail("`if` condition evaluated to a non-boolean");
  return V.I != 0;
}

} // namespace rt
)RT";

// main() and the thread harness; appended after the program functions.
const char *RuntimeMain = R"RT(
namespace rt {

struct RunArgs {
  uint64_t MaxSteps = 200000000ULL;
  uint64_t MaxDepth = 100000ULL;
  long long Repeat = 1;
  int Exit = 0;
  std::string Out;
  long long NsPerRun = 0;
};

static void *runProgram(void *P) {
  RunArgs *A = static_cast<RunArgs *>(P);
  try {
    std::string Rendered;
    struct timespec T0, T1;
    clock_gettime(CLOCK_MONOTONIC, &T0);
    for (long long I = 0; I < A->Repeat; ++I) {
      State S;
      S.MaxSteps = A->MaxSteps;
      S.MaxDepth = A->MaxDepth;
      Value V = fg_program(S);
      if (I + 1 == A->Repeat)
        Rendered = render(V);
    }
    clock_gettime(CLOCK_MONOTONIC, &T1);
    A->NsPerRun = ((T1.tv_sec - T0.tv_sec) * 1000000000LL +
                   (T1.tv_nsec - T0.tv_nsec)) /
                  A->Repeat;
    A->Out = Rendered;
    A->Exit = 0;
  } catch (const Err &E) {
    A->Out = E.Msg;
    A->Exit = 3;
  }
  return nullptr;
}

} // namespace rt

int main(int argc, char **argv) {
  rt::RunArgs A;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!strncmp(Arg, "--max-steps=", 12))
      A.MaxSteps = strtoull(Arg + 12, nullptr, 10);
    else if (!strncmp(Arg, "--max-depth=", 12))
      A.MaxDepth = strtoull(Arg + 12, nullptr, 10);
    else if (!strncmp(Arg, "--repeat=", 9))
      A.Repeat = strtoll(Arg + 9, nullptr, 10);
    else {
      fprintf(stderr, "usage: %s [--max-steps=N] [--max-depth=N] [--repeat=N]\n",
              argv[0]);
      return 2;
    }
  }
  if (A.Repeat < 1)
    A.Repeat = 1;
  // Run on a dedicated 512 MiB stack: deep program recursion (60k+
  // frames, like the VM supports) must not overflow the default stack.
  pthread_attr_t Attr;
  pthread_t Tid;
  bool Threaded = pthread_attr_init(&Attr) == 0 &&
                  pthread_attr_setstacksize(&Attr, 512ULL << 20) == 0 &&
                  pthread_create(&Tid, &Attr, rt::runProgram, &A) == 0;
  if (Threaded)
    pthread_join(Tid, nullptr);
  else
    rt::runProgram(&A);
  printf("%s\n", A.Out.c_str());
  if (A.Exit == 0 && A.Repeat > 1)
    printf("bench_ns_per_run=%lld\n", A.NsPerRun);
  return A.Exit;
}
)RT";

//===----------------------------------------------------------------------===//
// Free-variable analysis
//===----------------------------------------------------------------------===//

/// Appends the free term variables of \p T (in first-use order, for
/// deterministic emission) to \p Out.
void collectFreeVars(const Term *T, std::vector<std::string> &Bound,
                     std::vector<std::string> &Out,
                     std::set<std::string> &Seen) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
    return;
  case TermKind::Var: {
    const std::string &Name = cast<VarTerm>(T)->getName();
    for (size_t I = Bound.size(); I != 0; --I)
      if (Bound[I - 1] == Name)
        return;
    if (Seen.insert(Name).second)
      Out.push_back(Name);
    return;
  }
  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    size_t Mark = Bound.size();
    for (const ParamBinding &P : A->getParams())
      Bound.push_back(P.Name);
    collectFreeVars(A->getBody(), Bound, Out, Seen);
    Bound.resize(Mark);
    return;
  }
  case TermKind::TyAbs:
    collectFreeVars(cast<TyAbsTerm>(T)->getBody(), Bound, Out, Seen);
    return;
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    collectFreeVars(A->getFn(), Bound, Out, Seen);
    for (const Term *Arg : A->getArgs())
      collectFreeVars(Arg, Bound, Out, Seen);
    return;
  }
  case TermKind::TyApp:
    collectFreeVars(cast<TyAppTerm>(T)->getFn(), Bound, Out, Seen);
    return;
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    collectFreeVars(L->getInit(), Bound, Out, Seen);
    Bound.push_back(L->getName());
    collectFreeVars(L->getBody(), Bound, Out, Seen);
    Bound.pop_back();
    return;
  }
  case TermKind::Tuple:
    for (const Term *E : cast<TupleTerm>(T)->getElements())
      collectFreeVars(E, Bound, Out, Seen);
    return;
  case TermKind::Nth:
    collectFreeVars(cast<NthTerm>(T)->getTuple(), Bound, Out, Seen);
    return;
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    collectFreeVars(I->getCond(), Bound, Out, Seen);
    collectFreeVars(I->getThen(), Bound, Out, Seen);
    collectFreeVars(I->getElse(), Bound, Out, Seen);
    return;
  }
  case TermKind::Fix:
    collectFreeVars(cast<FixTerm>(T)->getOperand(), Bound, Out, Seen);
    return;
  }
}

std::vector<std::string> freeVars(const Term *T) {
  std::vector<std::string> Bound, Out;
  std::set<std::string> Seen;
  collectFreeVars(T, Bound, Out, Seen);
  return Out;
}

//===----------------------------------------------------------------------===//
// Emitter
//===----------------------------------------------------------------------===//

class Emitter {
public:
  explicit Emitter(const sf::Prelude &P) {
    for (const auto &E : P.Entries)
      PreludeNames.insert(E.Name);
  }

  aot::EmittedProgram emit(const Term *T);

private:
  /// One function being emitted.  Scope maps a System F name to the
  /// C++ expression that reads it in this function (`A[i]` argument,
  /// `C[j]` capture, or a `vN` local); shadowing resolves back-to-front.
  struct FnCtx {
    std::vector<std::pair<std::string, std::string>> Scope;
    std::string Body;
    std::string Indent = "  ";
  };

  std::set<std::string> PreludeNames;
  std::vector<std::string> Funcs; ///< Completed function definitions.
  unsigned NumFns = 0;
  unsigned NumVars = 0;
  std::string Error;

  std::string freshVar() { return "v" + std::to_string(NumVars++); }

  void line(FnCtx &F, const std::string &S) {
    F.Body += F.Indent + S + "\n";
  }

  /// The C++ expression for \p Name, or "" if it is not in scope and
  /// not a lowerable builtin.
  std::string resolve(const FnCtx &F, const std::string &Name) {
    for (size_t I = F.Scope.size(); I != 0; --I)
      if (F.Scope[I - 1].first == Name)
        return F.Scope[I - 1].second;
    if (PreludeNames.count(Name)) {
      if (Name == "nil")
        return "rt::mkNil()";
      int Id = builtinId(Name);
      if (Id >= 0)
        return "rt::mkBuiltin(" + std::to_string(Id) + ")";
      Error = "aot: builtin `" + Name + "` has no C++ lowering";
      return std::string();
    }
    Error = "aot: unbound variable `" + Name + "` at emit time";
    return std::string();
  }

  /// When \p Fn is an (possibly type-applied) unshadowed builtin
  /// function reference, returns its id and the number of TyApp
  /// wrappers; id -1 otherwise.  Such calls lower to a direct C++ call.
  int directBuiltin(const FnCtx &F, const Term *Fn, unsigned &TyWraps) {
    TyWraps = 0;
    while (const auto *TA = dyn_cast<TyAppTerm>(Fn)) {
      Fn = TA->getFn();
      ++TyWraps;
    }
    const auto *V = dyn_cast<VarTerm>(Fn);
    if (!V)
      return -1;
    for (size_t I = F.Scope.size(); I != 0; --I)
      if (F.Scope[I - 1].first == V->getName())
        return -1; // Shadowed: a local, not the builtin.
    if (!PreludeNames.count(V->getName()))
      return -1;
    return builtinId(V->getName());
  }

  /// Emits \p T into \p F; returns the name of the `Value` local
  /// holding the result (empty after an error).  Statements are flat:
  /// the local stays visible for the rest of the enclosing block.
  std::string emitTerm(const Term *T, FnCtx &F);

  /// Emits a new function for body \p Body with \p Params bound to the
  /// argument array and \p Caps to the capture array; returns its name.
  std::string emitFunction(const Term *Body,
                           const std::vector<std::string> &Params,
                           const std::vector<std::string> &Caps);
};

std::string Emitter::emitFunction(const Term *Body,
                                  const std::vector<std::string> &Params,
                                  const std::vector<std::string> &Caps) {
  std::string Name = "fn_" + std::to_string(NumFns++);
  FnCtx F;
  for (size_t I = 0; I != Caps.size(); ++I)
    F.Scope.emplace_back(Caps[I], "C[" + std::to_string(I) + "]");
  for (size_t I = 0; I != Params.size(); ++I)
    F.Scope.emplace_back(Params[I], "A[" + std::to_string(I) + "]");
  std::string R = emitTerm(Body, F);
  if (!Error.empty())
    return Name;
  std::string Def = "static rt::Value " + Name +
                    "(rt::State &S, const rt::Value *C, const rt::Value *A) "
                    "{\n  (void)C;\n  (void)A;\n";
  Def += F.Body;
  Def += "  return " + R + ";\n}\n";
  Funcs.push_back(std::move(Def));
  return Name;
}

std::string Emitter::emitTerm(const Term *T, FnCtx &F) {
  if (!Error.empty())
    return std::string();
  std::string V = freshVar();
  switch (T->getKind()) {
  case TermKind::IntLit: {
    int64_t I = cast<IntLit>(T)->getValue();
    std::string Lit = I == INT64_MIN
                          ? std::string("(-INT64_C(9223372036854775807) - 1)")
                          : "INT64_C(" + std::to_string(I) + ")";
    line(F, "S.enter();");
    line(F, "rt::Value " + V + " = rt::mkInt(" + Lit + ");");
    line(F, "S.leave();");
    return V;
  }
  case TermKind::BoolLit:
    line(F, "S.enter();");
    line(F, "rt::Value " + V + " = rt::mkBool(" +
                (cast<BoolLit>(T)->getValue() ? "true" : "false") + ");");
    line(F, "S.leave();");
    return V;

  case TermKind::Var: {
    std::string E = resolve(F, cast<VarTerm>(T)->getName());
    if (!Error.empty())
      return std::string();
    line(F, "S.enter();");
    line(F, "rt::Value " + V + " = " + E + ";");
    line(F, "S.leave();");
    return V;
  }

  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    std::vector<std::string> Params;
    for (const ParamBinding &P : A->getParams())
      Params.push_back(P.Name);
    // Captures: every free variable of the lambda that is bound in the
    // enclosing scope.  Builtins resolve globally and need no slot.
    std::vector<std::string> Caps, CapExprs;
    for (const std::string &FV : freeVars(T)) {
      for (size_t I = F.Scope.size(); I != 0; --I)
        if (F.Scope[I - 1].first == FV) {
          Caps.push_back(FV);
          CapExprs.push_back(F.Scope[I - 1].second);
          break;
        }
    }
    std::string Fn = emitFunction(A->getBody(), Params, Caps);
    if (!Error.empty())
      return std::string();
    std::string CapList;
    for (const std::string &E : CapExprs)
      CapList += (CapList.empty() ? "" : ", ") + E;
    line(F, "S.enter();");
    line(F, "rt::Value " + V + " = rt::mkClosure(&" + Fn + ", " +
                std::to_string(Params.size()) + ", std::vector<rt::Value>{" +
                CapList + "});");
    line(F, "S.leave();");
    return V;
  }

  case TermKind::TyAbs: {
    const auto *A = cast<TyAbsTerm>(T);
    std::vector<std::string> Caps, CapExprs;
    for (const std::string &FV : freeVars(T)) {
      for (size_t I = F.Scope.size(); I != 0; --I)
        if (F.Scope[I - 1].first == FV) {
          Caps.push_back(FV);
          CapExprs.push_back(F.Scope[I - 1].second);
          break;
        }
    }
    std::string Fn = emitFunction(A->getBody(), {}, Caps);
    if (!Error.empty())
      return std::string();
    std::string CapList;
    for (const std::string &E : CapExprs)
      CapList += (CapList.empty() ? "" : ", ") + E;
    line(F, "S.enter();");
    line(F, "rt::Value " + V + " = rt::mkTyClosure(&" + Fn +
                ", std::vector<rt::Value>{" + CapList + "});");
    line(F, "S.leave();");
    return V;
  }

  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    unsigned TyWraps = 0;
    int Direct = directBuiltin(F, A->getFn(), TyWraps);
    if (Direct >= 0 &&
        BuiltinTable[Direct].Arity == A->getArgs().size()) {
      // Statically-resolved builtin: direct call, with the charge
      // sequence the tree-walker would make (App frame, one frame per
      // TyApp wrapper, the Var frame, then the applyImpl frame).
      line(F, "S.enter();");
      for (unsigned I = 0; I != TyWraps; ++I)
        line(F, "S.enter();");
      line(F, "S.enter();");
      line(F, "S.leave();");
      for (unsigned I = 0; I != TyWraps; ++I)
        line(F, "S.leave();");
      std::vector<std::string> Args;
      for (const Term *Arg : A->getArgs())
        Args.push_back(emitTerm(Arg, F));
      if (!Error.empty())
        return std::string();
      std::string ArgList;
      for (const std::string &Arg : Args)
        ArgList += (ArgList.empty() ? "" : ", ") + Arg;
      line(F, "S.enter();");
      line(F, "rt::Value " + V + " = rt::b_" +
                  std::string(BuiltinTable[Direct].Name) + "(" + ArgList +
                  ");");
      line(F, "S.leave();");
      line(F, "S.leave();");
      return V;
    }

    line(F, "S.enter();");
    std::string Fn = emitTerm(A->getFn(), F);
    std::vector<std::string> Args;
    for (const Term *Arg : A->getArgs())
      Args.push_back(emitTerm(Arg, F));
    if (!Error.empty())
      return std::string();
    line(F, "rt::Value " + V + ";");
    if (Args.empty()) {
      line(F, V + " = rt::apply(S, " + Fn + ", nullptr, 0);");
    } else {
      std::string ArgList;
      for (const std::string &Arg : Args)
        ArgList += (ArgList.empty() ? "" : ", ") + Arg;
      line(F, "{");
      line(F, "  rt::Value Ar[] = {" + ArgList + "};");
      line(F, "  " + V + " = rt::apply(S, " + Fn + ", Ar, " +
                  std::to_string(Args.size()) + ");");
      line(F, "}");
    }
    line(F, "S.leave();");
    return V;
  }

  case TermKind::TyApp: {
    const auto *A = cast<TyAppTerm>(T);
    line(F, "S.enter();");
    std::string Fn = emitTerm(A->getFn(), F);
    if (!Error.empty())
      return std::string();
    line(F, "rt::Value " + V + " = rt::tyapply(S, " + Fn + ");");
    line(F, "S.leave();");
    return V;
  }

  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    line(F, "S.enter();");
    std::string Init = emitTerm(L->getInit(), F);
    if (!Error.empty())
      return std::string();
    F.Scope.emplace_back(L->getName(), Init);
    std::string Body = emitTerm(L->getBody(), F);
    F.Scope.pop_back();
    if (!Error.empty())
      return std::string();
    line(F, "S.leave();");
    return Body;
  }

  case TermKind::Tuple: {
    const auto *Tu = cast<TupleTerm>(T);
    line(F, "S.enter();");
    std::vector<std::string> Elems;
    for (const Term *E : Tu->getElements())
      Elems.push_back(emitTerm(E, F));
    if (!Error.empty())
      return std::string();
    std::string List;
    for (const std::string &E : Elems)
      List += (List.empty() ? "" : ", ") + E;
    line(F, "rt::Value " + V + " = rt::mkTuple(std::vector<rt::Value>{" +
                List + "});");
    line(F, "S.leave();");
    return V;
  }

  case TermKind::Nth: {
    const auto *N = cast<NthTerm>(T);
    line(F, "S.enter();");
    std::string Tu = emitTerm(N->getTuple(), F);
    if (!Error.empty())
      return std::string();
    line(F, "rt::Value " + V + " = rt::proj(" + Tu + ", " +
                std::to_string(N->getIndex()) + ");");
    line(F, "S.leave();");
    return V;
  }

  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    line(F, "S.enter();");
    std::string Cond = emitTerm(I->getCond(), F);
    if (!Error.empty())
      return std::string();
    line(F, "rt::Value " + V + ";");
    line(F, "if (rt::truth(" + Cond + ")) {");
    std::string Saved = F.Indent;
    F.Indent += "  ";
    std::string Then = emitTerm(I->getThen(), F);
    if (Error.empty())
      line(F, V + " = " + Then + ";");
    F.Indent = Saved;
    line(F, "} else {");
    F.Indent += "  ";
    std::string Else = emitTerm(I->getElse(), F);
    if (Error.empty())
      line(F, V + " = " + Else + ";");
    F.Indent = Saved;
    line(F, "}");
    line(F, "S.leave();");
    if (!Error.empty())
      return std::string();
    return V;
  }

  case TermKind::Fix: {
    const auto *Fx = cast<FixTerm>(T);
    line(F, "S.enter();");
    std::string Op = emitTerm(Fx->getOperand(), F);
    if (!Error.empty())
      return std::string();
    line(F, "rt::Value " + V + " = rt::mkFix(" + Op + ");");
    line(F, "S.leave();");
    return V;
  }
  }
  Error = "aot: unknown term kind";
  return std::string();
}

aot::EmittedProgram Emitter::emit(const Term *T) {
  FnCtx Main;
  std::string R = emitTerm(T, Main);
  aot::EmittedProgram P;
  if (!Error.empty()) {
    P.Error = Error;
    return P;
  }
  std::string Out = "// Generated by fgc --backend=aot (emitter version " +
                    std::to_string(aot::EmitterVersion) + "). Do not edit.\n";
  Out += RuntimePrelude;
  Out += "\nnamespace rt {\n\nstatic Value fg_program(State &S);\n";
  for (unsigned I = 0; I != NumFns; ++I)
    Out += "static Value fn_" + std::to_string(I) +
           "(State &S, const Value *C, const Value *A);\n";
  Out += "\n} // namespace rt\n\nnamespace rt {\n\n";
  for (const std::string &Def : Funcs)
    Out += Def + "\n";
  Out += "static Value fg_program(State &S) {\n";
  Out += Main.Body;
  Out += "  return " + R + ";\n}\n\n} // namespace rt\n";
  Out += RuntimeMain;
  P.Cpp = std::move(Out);
  return P;
}

} // namespace

aot::EmittedProgram fg::aot::emitCpp(const sf::Term *T,
                                     const sf::Prelude &Prelude) {
  Emitter E(Prelude);
  return E.emit(T);
}
