//===- aot/Toolchain.h - Host C++ toolchain driver --------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locates the host C++ compiler, compiles emitted translation units
/// into per-program executables under a content-hash build cache, and
/// runs them capturing the printed value / abort diagnostic.
///
/// Compiler discovery ladder (first hit wins):
///   1. ToolchainOptions::Cxx       (the `--aot-cxx=` flag)
///   2. $FGC_AOT_CXX
///   3. FGC_HOST_CXX                (CMAKE_CXX_COMPILER, baked at build)
///   4. $CXX
///   5. c++ / g++ / clang++ on $PATH
///
/// The cache key is FNV-1a 64 over the emitter version, the compiler
/// path, the flags, and the full generated C++ — so a new emitter, a
/// different compiler, different sanitizer flags, or any change to the
/// program each get their own artifact; stale artifacts are simply
/// never looked up (mirroring the server ArtifactCache's discipline of
/// keying on every input).  Artifacts land in `--aot-cache=` /
/// $FGC_AOT_CACHE / `./.fgc.aot-cache` and are written atomically
/// (temp + rename) so concurrent test processes can share a dir.
///
/// Observability: aot.cache.{hits,misses} counters; aot.compile /
/// aot.run timers (gated like every other phase timer).
///
//===----------------------------------------------------------------------===//

#ifndef FG_AOT_TOOLCHAIN_H
#define FG_AOT_TOOLCHAIN_H

#include "systemf/Eval.h"
#include <cstdint>
#include <string>

namespace fg {
namespace aot {

/// Where and how to compile.  Default-constructed options use the
/// environment-driven discovery ladder and the default cache dir.
struct ToolchainOptions {
  std::string Cxx;           ///< Explicit compiler (--aot-cxx=); "" = auto.
  std::string CacheDir;      ///< Build cache dir (--aot-cache=); "" = auto.
  std::string ExtraCxxFlags; ///< Appended flags; "" = $FGC_AOT_CXXFLAGS.
  bool KeepCpp = false;      ///< Keep the generated .cpp next to the binary.
};

/// The compiler the ladder resolves to, or "" with a one-line
/// diagnostic in \p WhyNot (actionable: names the ladder).
std::string findCompiler(const ToolchainOptions &Opts,
                         std::string *WhyNot = nullptr);

/// True when `--backend=aot` can work here at all.
bool toolchainAvailable(const ToolchainOptions &Opts = ToolchainOptions(),
                        std::string *WhyNot = nullptr);

/// The 16-hex-digit artifact key for \p Cpp compiled by \p Cxx with
/// \p Flags under emitter \p Version.  Exposed (with the version
/// parameter) so tests can assert that a different emitter version
/// invalidates the artifact.
std::string artifactKey(const std::string &Cpp, const std::string &Cxx,
                        const std::string &Flags, unsigned Version);

/// A compiled (or cache-hit) program.
struct CompiledProgram {
  std::string ExePath;
  std::string CppPath; ///< Non-empty when the .cpp was kept.
  bool CacheHit = false;
  std::string Error; ///< Empty on success.
  bool ok() const { return Error.empty(); }
};

/// Compiles \p Cpp under the build cache; a cache hit skips the host
/// compiler entirely.
CompiledProgram compileProgram(const std::string &Cpp,
                               const ToolchainOptions &Opts);

/// Outcome of running a compiled program.
struct RunOutput {
  int ExitCode = -1;
  std::string Payload;      ///< Rendered value (exit 0) or error (exit 3).
  long long BenchNsPerRun = 0; ///< From --repeat bench mode; 0 otherwise.
  std::string Error;        ///< Spawn/protocol failure; empty otherwise.
  bool ok() const { return Error.empty(); }
};

/// Runs \p ExePath with the evaluation limits of \p Opts; \p Repeat > 1
/// re-runs the program in-process (bench mode) and fills BenchNsPerRun.
RunOutput runProgram(const std::string &ExePath, const sf::EvalOptions &Opts,
                     long long Repeat = 1);

} // namespace aot
} // namespace fg

#endif // FG_AOT_TOOLCHAIN_H
