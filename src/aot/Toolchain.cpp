//===- aot/Toolchain.cpp - Host C++ toolchain driver ----------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "aot/Toolchain.h"
#include "aot/CppEmitter.h"
#include "support/Stats.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace fg;
using namespace fg::aot;

namespace {

/// FNV-1a 64; the same content-hash discipline the module interfaces
/// and the server ArtifactCache use.
uint64_t fnv1a(uint64_t H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

std::string envOr(const char *Name, const std::string &Fallback) {
  const char *V = std::getenv(Name);
  return V && *V ? std::string(V) : Fallback;
}

bool isExecutableFile(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode) &&
         ::access(Path.c_str(), X_OK) == 0;
}

/// Resolves \p Name like the shell would: paths with a '/' are checked
/// directly, bare names are searched on $PATH.
std::string resolveExecutable(const std::string &Name) {
  if (Name.empty())
    return std::string();
  if (Name.find('/') != std::string::npos)
    return isExecutableFile(Name) ? Name : std::string();
  std::string Path = envOr("PATH", "/usr/local/bin:/usr/bin:/bin");
  size_t Pos = 0;
  while (Pos <= Path.size()) {
    size_t End = Path.find(':', Pos);
    if (End == std::string::npos)
      End = Path.size();
    std::string Dir = Path.substr(Pos, End - Pos);
    if (!Dir.empty()) {
      std::string Candidate = Dir + "/" + Name;
      if (isExecutableFile(Candidate))
        return Candidate;
    }
    Pos = End + 1;
  }
  return std::string();
}

std::string shellQuote(const std::string &S) {
  std::string Out = "'";
  for (char C : S)
    Out += C == '\'' ? std::string("'\\''") : std::string(1, C);
  return Out + "'";
}

/// mkdir -p.
bool makeDirs(const std::string &Path) {
  std::string Partial;
  size_t Pos = 0;
  while (Pos <= Path.size()) {
    size_t End = Path.find('/', Pos);
    if (End == std::string::npos)
      End = Path.size();
    Partial = Path.substr(0, End);
    if (!Partial.empty() && ::mkdir(Partial.c_str(), 0755) != 0 &&
        errno != EEXIST)
      return false;
    Pos = End + 1;
  }
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

/// Runs \p Cmd via the shell, capturing stdout (stderr is folded in by
/// the caller when wanted).  Returns the exit code, -1 on spawn failure.
int runCommand(const std::string &Cmd, std::string &Stdout) {
  Stdout.clear();
  FILE *P = ::popen(Cmd.c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = ::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Stdout.append(Buf, N);
  int Status = ::pclose(P);
  if (Status == -1)
    return -1;
  if (WIFEXITED(Status))
    return WEXITSTATUS(Status);
  return 128; // Killed by a signal.
}

std::string resolveCacheDir(const ToolchainOptions &Opts) {
  if (!Opts.CacheDir.empty())
    return Opts.CacheDir;
  return envOr("FGC_AOT_CACHE", ".fgc.aot-cache");
}

std::string resolveFlags(const ToolchainOptions &Opts) {
  std::string Flags = "-std=c++17 -O2 -pthread";
  std::string Extra =
      !Opts.ExtraCxxFlags.empty() ? Opts.ExtraCxxFlags : envOr("FGC_AOT_CXXFLAGS", "");
  if (!Extra.empty())
    Flags += " " + Extra;
  return Flags;
}

} // namespace

std::string fg::aot::findCompiler(const ToolchainOptions &Opts,
                                  std::string *WhyNot) {
  if (!Opts.Cxx.empty()) {
    std::string Found = resolveExecutable(Opts.Cxx);
    if (Found.empty() && WhyNot)
      *WhyNot = "C++ compiler `" + Opts.Cxx + "` not found or not executable";
    return Found;
  }
  std::string FromEnv = envOr("FGC_AOT_CXX", "");
  if (!FromEnv.empty()) {
    std::string Found = resolveExecutable(FromEnv);
    if (Found.empty() && WhyNot)
      *WhyNot = "C++ compiler `" + FromEnv +
                "` ($FGC_AOT_CXX) not found or not executable";
    return Found;
  }
#ifdef FGC_HOST_CXX
  {
    std::string Found = resolveExecutable(FGC_HOST_CXX);
    if (!Found.empty())
      return Found;
  }
#endif
  const char *Candidates[] = {std::getenv("CXX"), "c++", "g++", "clang++"};
  for (const char *Candidate : Candidates) {
    if (!Candidate || !*Candidate)
      continue;
    std::string Found = resolveExecutable(Candidate);
    if (!Found.empty())
      return Found;
  }
  if (WhyNot)
    *WhyNot = "no host C++ compiler found (tried --aot-cxx, $FGC_AOT_CXX, "
              "$CXX, and c++/g++/clang++ on $PATH); install g++ or pass "
              "--aot-cxx=<path>";
  return std::string();
}

bool fg::aot::toolchainAvailable(const ToolchainOptions &Opts,
                                 std::string *WhyNot) {
  return !findCompiler(Opts, WhyNot).empty();
}

std::string fg::aot::artifactKey(const std::string &Cpp,
                                 const std::string &Cxx,
                                 const std::string &Flags, unsigned Version) {
  uint64_t H = 1469598103934665603ULL;
  H = fnv1a(H, "aot:v" + std::to_string(Version));
  H = fnv1a(H, Cxx);
  H = fnv1a(H, Flags);
  H = fnv1a(H, Cpp);
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)H);
  return std::string(Buf);
}

CompiledProgram fg::aot::compileProgram(const std::string &Cpp,
                                        const ToolchainOptions &Opts) {
  CompiledProgram Out;
  std::string WhyNot;
  std::string Cxx = findCompiler(Opts, &WhyNot);
  if (Cxx.empty()) {
    Out.Error = "aot: " + WhyNot;
    return Out;
  }
  std::string Flags = resolveFlags(Opts);
  std::string Dir = resolveCacheDir(Opts);
  if (!makeDirs(Dir)) {
    Out.Error = "aot: cannot create build cache dir `" + Dir + "`";
    return Out;
  }
  std::string Key = artifactKey(Cpp, Cxx, Flags, EmitterVersion);
  std::string Exe = Dir + "/" + Key + ".bin";
  std::string CppPath = Dir + "/" + Key + ".cpp";

  static std::atomic<uint64_t> &Hits =
      stats::Statistics::global().counter("aot.cache.hits");
  static std::atomic<uint64_t> &Misses =
      stats::Statistics::global().counter("aot.cache.misses");

  if (isExecutableFile(Exe)) {
    ++Hits;
    Out.ExePath = Exe;
    Out.CacheHit = true;
    if (Opts.KeepCpp) {
      std::ofstream OS(CppPath, std::ios::trunc);
      OS << Cpp;
      Out.CppPath = CppPath;
    }
    return Out;
  }
  ++Misses;

  stats::ScopedTimer Timer("aot.compile");
  {
    std::ofstream OS(CppPath, std::ios::trunc);
    OS << Cpp;
    if (!OS) {
      Out.Error = "aot: cannot write `" + CppPath + "`";
      return Out;
    }
  }
  // Atomic publish: compile to a pid-suffixed temp, then rename, so
  // concurrent processes sharing the cache dir never see a torn binary.
  std::string Tmp = Exe + ".tmp." + std::to_string(::getpid());
  std::string Cmd = shellQuote(Cxx) + " " + Flags + " -o " + shellQuote(Tmp) +
                    " " + shellQuote(CppPath) + " 2>&1";
  std::string CompilerOutput;
  int Exit = runCommand(Cmd, CompilerOutput);
  if (Exit != 0) {
    ::unlink(Tmp.c_str());
    if (CompilerOutput.size() > 2000)
      CompilerOutput = CompilerOutput.substr(0, 2000) + "...";
    Out.Error = "aot: host compiler failed (exit " + std::to_string(Exit) +
                "): " + CompilerOutput + " (generated C++ kept at " + CppPath +
                ")";
    return Out;
  }
  if (::rename(Tmp.c_str(), Exe.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    Out.Error = "aot: cannot publish artifact `" + Exe + "`";
    return Out;
  }
  if (Opts.KeepCpp)
    Out.CppPath = CppPath;
  else
    ::unlink(CppPath.c_str());
  Out.ExePath = Exe;
  return Out;
}

RunOutput fg::aot::runProgram(const std::string &ExePath,
                              const sf::EvalOptions &Opts, long long Repeat) {
  stats::ScopedTimer Timer("aot.run");
  RunOutput Out;
  std::string Cmd = shellQuote(ExePath) +
                    " --max-steps=" + std::to_string(Opts.MaxSteps) +
                    " --max-depth=" + std::to_string(Opts.MaxDepth);
  if (Repeat > 1)
    Cmd += " --repeat=" + std::to_string(Repeat);
  std::string Stdout;
  int Exit = runCommand(Cmd, Stdout);
  Out.ExitCode = Exit;
  if (Exit < 0) {
    Out.Error = "aot: failed to spawn `" + ExePath + "`";
    return Out;
  }
  size_t Eol = Stdout.find('\n');
  Out.Payload = Eol == std::string::npos ? Stdout : Stdout.substr(0, Eol);
  if (Exit == 0) {
    size_t Bench = Stdout.find("bench_ns_per_run=");
    if (Bench != std::string::npos)
      Out.BenchNsPerRun =
          std::strtoll(Stdout.c_str() + Bench + strlen("bench_ns_per_run="),
                       nullptr, 10);
    return Out;
  }
  if (Exit == 3)
    return Out; // Runtime error; Payload carries the diagnostic.
  Out.Error = "aot: compiled program exited with code " + std::to_string(Exit);
  return Out;
}
