//===- aot/CppEmitter.h - System F to C++17 transpiler ----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a (typically `-O2`-specialized) System F term to one
/// self-contained C++17 translation unit: a tagged-value runtime
/// header, one C++ function per lambda / type abstraction with flat
/// capture arrays, direct calls for statically-resolved builtins, and
/// `fix` as a trampolined unroll loop.  The generated program renders
/// its value exactly like sf::valueToString and aborts with the exact
/// diagnostics of the tree-walking evaluator (systemf/Eval.cpp) — the
/// emitted step/depth accounting mirrors evalTerm/applyImpl frame for
/// frame, which is what lets the AOT backend join the differential
/// contract in tests/Differential.h on values *and* abort messages.
///
//===----------------------------------------------------------------------===//

#ifndef FG_AOT_CPPEMITTER_H
#define FG_AOT_CPPEMITTER_H

#include "systemf/Builtins.h"
#include "systemf/Term.h"
#include <string>

namespace fg {
namespace aot {

/// Bumped whenever the emitted runtime or code shape changes in any
/// observable way; salted into the build-cache key so artifacts from an
/// older emitter are never reused (Toolchain.h).
extern const unsigned EmitterVersion;

/// Result of emission: a complete C++ translation unit, or an error.
struct EmittedProgram {
  std::string Cpp;
  std::string Error; ///< Empty on success.
  bool ok() const { return Error.empty(); }
};

/// Emits \p T as a self-contained C++17 program.  \p Prelude supplies
/// the builtin names the term may reference; a name the emitter does
/// not know how to lower is reported as an error, never miscompiled.
/// Emission is deterministic: the same term yields byte-identical C++,
/// which is what makes the content-hash build cache effective.
EmittedProgram emitCpp(const sf::Term *T, const sf::Prelude &Prelude);

} // namespace aot
} // namespace fg

#endif // FG_AOT_CPPEMITTER_H
