//===- aot/Aot.cpp - The AOT execution backend ----------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "aot/Aot.h"
#include "aot/CppEmitter.h"
#include "support/Stats.h"
#include <cctype>
#include <cstdlib>
#include <cstring>

using namespace fg;
using namespace fg::aot;
using namespace fg::sf;

namespace {

/// Recursive-descent parser over valueToString's grammar:
///   value := int | "true" | "false" | "(" [value {", " value}] ")"
///          | "[" [value {", " value}] "]" | "<closure>" | "<tyclosure>"
///          | "<fix>" | "<builtin " name ">"
struct ValueParser {
  const std::string &S;
  size_t Pos = 0;

  explicit ValueParser(const std::string &S) : S(S) {}

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }

  ValuePtr parse() {
    if (Pos >= S.size())
      return nullptr;
    char C = S[Pos];
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      size_t End = Pos + 1;
      while (End < S.size() && std::isdigit(static_cast<unsigned char>(S[End])))
        ++End;
      if (C == '-' && End == Pos + 1)
        return nullptr;
      int64_t V = std::strtoll(S.substr(Pos, End - Pos).c_str(), nullptr, 10);
      Pos = End;
      return boxInt(V);
    }
    if (literal("true"))
      return boxBool(true);
    if (literal("false"))
      return boxBool(false);
    if (literal("<closure>"))
      return std::make_shared<ClosureValue>(nullptr, nullptr);
    if (literal("<tyclosure>"))
      return std::make_shared<TyClosureValue>(nullptr, nullptr);
    if (literal("<fix>"))
      return std::make_shared<FixValue>(nullptr);
    if (literal("<builtin ")) {
      size_t End = S.find('>', Pos);
      if (End == std::string::npos)
        return nullptr;
      std::string Name = S.substr(Pos, End - Pos);
      Pos = End + 1;
      return std::make_shared<BuiltinValue>(Name, 0, nullptr);
    }
    if (C == '(') {
      ++Pos;
      std::vector<ValuePtr> Elems;
      if (!elements(')', Elems))
        return nullptr;
      return std::make_shared<TupleValue>(std::move(Elems));
    }
    if (C == '[') {
      ++Pos;
      std::vector<ValuePtr> Elems;
      if (!elements(']', Elems))
        return nullptr;
      return makeListValue(Elems);
    }
    return nullptr;
  }

  bool elements(char Close, std::vector<ValuePtr> &Out) {
    if (Pos < S.size() && S[Pos] == Close) {
      ++Pos;
      return true;
    }
    while (true) {
      ValuePtr V = parse();
      if (!V)
        return false;
      Out.push_back(std::move(V));
      if (Pos < S.size() && S[Pos] == Close) {
        ++Pos;
        return true;
      }
      if (!literal(", "))
        return false;
    }
  }
};

} // namespace

ValuePtr fg::aot::parseRenderedValue(const std::string &Text) {
  ValueParser P(Text);
  ValuePtr V = P.parse();
  if (!V || P.Pos != Text.size())
    return nullptr;
  return V;
}

EvalResult fg::aot::runAot(const sf::Term *T, const Prelude &Prelude,
                           const EvalOptions &Opts,
                           const ToolchainOptions &Toolchain, RunInfo *Info,
                           long long Repeat) {
  static std::atomic<uint64_t> &Runs =
      stats::Statistics::global().counter("aot.runs");
  ++Runs;

  EmittedProgram Emitted;
  {
    stats::ScopedTimer Timer("aot.emit");
    Emitted = emitCpp(T, Prelude);
  }
  if (!Emitted.ok())
    return EvalResult::failure(Emitted.Error);

  CompiledProgram Compiled = compileProgram(Emitted.Cpp, Toolchain);
  if (!Compiled.ok())
    return EvalResult::failure(Compiled.Error);
  if (Info) {
    Info->CacheHit = Compiled.CacheHit;
    Info->ExePath = Compiled.ExePath;
    Info->CppPath = Compiled.CppPath;
  }

  RunOutput Out = runProgram(Compiled.ExePath, Opts, Repeat);
  if (!Out.ok())
    return EvalResult::failure(Out.Error);
  if (Info)
    Info->BenchNsPerRun = Out.BenchNsPerRun;
  if (Out.ExitCode == 3)
    return EvalResult::failure(Out.Payload);

  ValuePtr V = parseRenderedValue(Out.Payload);
  if (!V)
    return EvalResult::failure("aot: unparseable program output `" +
                               Out.Payload + "`");
  return EvalResult::success(std::move(V));
}
