//===- aot/Aot.h - The AOT execution backend --------------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--backend=aot` entry point: emit a System F term as C++
/// (CppEmitter.h), compile it with the host toolchain under the build
/// cache (Toolchain.h), run the binary, and fold the outcome back into
/// the sf::EvalResult shape every other engine produces — the printed
/// value is parsed back into an sf::Value so the differential harness
/// compares all backends through the identical valueToString path, and
/// a runtime abort comes back as the byte-identical error string.
///
//===----------------------------------------------------------------------===//

#ifndef FG_AOT_AOT_H
#define FG_AOT_AOT_H

#include "aot/Toolchain.h"
#include "systemf/Builtins.h"
#include "systemf/Eval.h"
#include "systemf/Value.h"

namespace fg {
namespace aot {

/// Side-channel facts about one AOT run, for the driver's stats and
/// the bench harness.
struct RunInfo {
  bool CacheHit = false;
  std::string ExePath;
  std::string CppPath;         ///< Non-empty when KeepCpp was set.
  long long BenchNsPerRun = 0; ///< Filled when Repeat > 1.
};

/// Runs \p T ahead-of-time: emit, compile (cached), execute.  Returns
/// success with the (re-parsed) value, or failure carrying either the
/// program's runtime diagnostic or an `aot:`-prefixed toolchain error.
/// \p Repeat > 1 re-runs the program in-process for benchmarking.
sf::EvalResult runAot(const sf::Term *T, const sf::Prelude &Prelude,
                      const sf::EvalOptions &Opts = sf::EvalOptions(),
                      const ToolchainOptions &Toolchain = ToolchainOptions(),
                      RunInfo *Info = nullptr, long long Repeat = 1);

/// Parses a value rendered by sf::valueToString (which the generated
/// runtime reproduces byte-for-byte) back into an sf::Value.
/// Function-like values come back as placeholder closures that render
/// identically.  Returns null when \p Text is not a rendered value.
sf::ValuePtr parseRenderedValue(const std::string &Text);

} // namespace aot
} // namespace fg

#endif // FG_AOT_AOT_H
