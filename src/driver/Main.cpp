//===- driver/Main.cpp - The fgc command-line tool ------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver:
///
///   fgc [options] file.fg            compile and run an F_G program
///   fgc [options] -                  read the program from stdin
///   fgc --batch [options] paths...   separately check a module graph
///
/// A single file that declares `module`/`import` is automatically
/// compiled through the module loader: its imports are resolved, the
/// modules are linked into one program, and the usual pipeline runs on
/// the result.  `--batch` instead checks every module separately
/// against its dependencies' serialized `.fgi` interfaces, scheduling
/// independent modules across a thread pool; a directory argument means
/// every `.fg` file in it.
///
/// Options:
///   --check        stop after typechecking; print the F_G type
///   --translate    print the System F translation and its type
///   --ast          print the parsed F_G program
///   --no-verify    skip re-checking the translation in System F
///                  (alias for --validate=off)
///   --validate[=<off|translate|passes>]
///                  dynamic verification level: `translate` re-checks
///                  the translation in System F and compares its type
///                  against the F_G type's image (Theorems 1 and 2);
///                  `passes` additionally re-typechecks every
///                  optimizer pass's output, attributing a failure to
///                  the pass by name.  Bare `--validate` means
///                  `passes`.  Defaults to `translate` in debug
///                  builds and `off` in release builds.
///   --fuzz <n>     generate <n> seeded well-typed programs and drive
///                  the full validation surface with them (no input
///                  file is read; see validate/Fuzz.h)
///   --seed <n>     base seed for --fuzz / --gen-corpus (default 42)
///   --direct       evaluate with the direct F_G interpreter instead of
///                  the System F translation (and cross-check the two)
///   --optimize     also specialize the translation (dictionary
///                  elimination), print it, and cross-check its value
///   --specialize[=off|apps|dicts|full]
///                  whole-program specialization level on top of the
///                  baseline passes (systemf/Specialize.h); `-O2` is
///                  shorthand for `--optimize --specialize=full`
///   --backend=<tree|closure|vm|aot>
///                  execution engine for the translation: the
///                  tree-walking evaluator (default), the
///                  closure-compiling engine, the bytecode VM, or the
///                  ahead-of-time C++ transpiler (aot/Aot.h; the term
///                  is `-O2`-specialized first unless --specialize
///                  was given explicitly).  The registry of names
///                  lives in support/Backends.h.
///   --aot-cxx=<path>
///                  host C++ compiler for --backend=aot (overrides
///                  the $FGC_AOT_CXX/$CXX/PATH discovery ladder)
///   --aot-cache=<dir>
///                  AOT build cache directory (default
///                  ./.fgc.aot-cache, or $FGC_AOT_CACHE)
///   --aot-keep-cpp keep the generated C++ in the cache dir and print
///                  its path
///   --dump-bytecode
///                  print the VM bytecode for the translation
///                  (vm/Disasm.h) and continue
///   --no-superinstructions
///                  disable the VM's peephole superinstruction fusion
///                  for the whole process (for A/B comparison; values,
///                  errors, and abort points must be identical)
///   --batch        separately check modules; write `.fgi` interfaces
///   --gen-corpus <n>
///                  generate a seeded, deterministic corpus of <n>
///                  well-typed modules into --out (corpus/Corpus.h);
///                  same seed and knobs => byte-identical files
///   --out <dir>    output directory for --gen-corpus
///   --corpus-shape=<layered|chain|fanin>
///                  dependency-graph silhouette (default layered)
///   --corpus-layers=<n>
///                  layer count for the layered shape (0 = auto)
///   --corpus-max-imports=<n>
///                  max direct imports per module (layered shape)
///   --corpus-diamond=<pct>
///                  share of import edges reaching past the previous
///                  layer, which is what creates diamonds
///   -j <n>         batch worker threads (0 = all hardware threads)
///   -I <dir>       add a module search path (repeatable)
///   --module-cache=<dir>
///                  write/read `.fgi` interfaces in <dir> instead of
///                  next to each source file
///   --no-cache     ignore existing `.fgi` files; recheck everything
///   --stats        print compiler statistics (phase timings, counter
///                  values, cache hit rates) to stderr on exit
///   --stats-json=<file>
///                  also write the statistics as JSON to <file>
///                  (`-` for stdout)
///   --no-model-cache
///                  disable the checker's model-resolution and
///                  congruence-query caches (for A/B comparison; the
///                  result must be identical either way)
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "modules/Batch.h"
#include "modules/Loader.h"
#include "support/Backends.h"
#include "support/Stats.h"
#include "syntax/Frontend.h"
#include "validate/Fuzz.h"
#include "validate/Validate.h"
#include "vm/Disasm.h"
#include "vm/Emit.h"
#include <algorithm>
#include <cstdio>
#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace fg;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: fgc [options] <file.fg | ->\n"
        "       fgc --batch [options] <files-or-directories...>\n"
        "\n"
        "options:\n"
        "  --check                stop after typechecking\n"
        "  --translate            print the System F translation\n"
        "  --ast                  print the parsed program\n"
        "  --no-verify            skip System F re-checking\n"
        "  --validate[=<mode>]    `off`, `translate` (re-check the\n"
        "                         translation; Theorems 1/2), or `passes`\n"
        "                         (also re-typecheck each optimizer pass);\n"
        "                         bare --validate means `passes`; default\n"
        "                         is `translate` in debug builds, `off` in\n"
        "                         release builds\n"
        "  --fuzz <n>             validate <n> generated well-typed\n"
        "                         programs across all backends\n"
        "  --seed <n>             base seed for --fuzz / --gen-corpus\n"
        "                         (default 42)\n"
        "  --direct               cross-check with the direct interpreter\n"
        "  --optimize, -O1        optimize and cross-check the result\n"
        "  --specialize[=<lvl>]   whole-program specialization level on\n"
        "                         top of -O1: `off`, `apps` (clone\n"
        "                         polymorphic functions at concrete\n"
        "                         types), `dicts` (also devirtualize\n"
        "                         concept members), `full` (also drop\n"
        "                         dead dictionary params/fields); bare\n"
        "                         --specialize means `full`\n"
        "  -O2                    shorthand for --optimize\n"
        "                         --specialize=full\n"
        "  --backend=<name>       execution engine for the translation;\n"
        "                         one of:\n"
     << backendHelpTable("                           ")
     << "  --aot-cxx=<path>       host C++ compiler for --backend=aot\n"
        "  --aot-cache=<dir>      AOT build cache directory (default\n"
        "                         ./.fgc.aot-cache or $FGC_AOT_CACHE)\n"
        "  --aot-keep-cpp         keep the generated C++ in the cache dir\n"
        "  --dump-bytecode        print the translation's VM bytecode\n"
        "  --no-superinstructions disable VM peephole fusion (for A/B;\n"
        "                         the result must be identical)\n"
        "  --batch                separately check modules (.fgi output)\n"
        "  --gen-corpus <n>       write a deterministic corpus of <n>\n"
        "                         well-typed modules into --out\n"
        "  --out <dir>            output directory for --gen-corpus\n"
        "  --corpus-shape=<s>     corpus graph shape: layered (default),\n"
        "                         chain, or fanin\n"
        "  --corpus-layers=<n>    layered-shape layer count (0 = auto)\n"
        "  --corpus-max-imports=<n>\n"
        "                         max direct imports per corpus module\n"
        "  --corpus-diamond=<p>   percent of corpus import edges that\n"
        "                         skip layers (diamond density)\n"
        "  -j <n>                 batch worker threads (0 = all cores)\n"
        "  -I <dir>               add a module search path\n"
        "  --module-cache=<dir>   directory for .fgi interface files\n"
        "  --no-cache             ignore existing .fgi files\n"
        "  --stats                print statistics to stderr on exit\n"
        "  --stats-json=<file>    write statistics as JSON (- for stdout)\n"
        "  --no-model-cache       disable checker memoization\n"
        "  --help, -h             print this help\n";
}

int usageError() {
  printUsage(std::cerr);
  return 2;
}

/// Emits the accumulated statistics per the --stats/--stats-json flags.
/// Runs on every exit path once requested, so failed compilations still
/// report (that is when the numbers are most interesting).
struct StatsReporter {
  bool Human = false;
  std::string JsonPath;

  ~StatsReporter() {
    const stats::Statistics &S = stats::Statistics::global();
    if (Human)
      S.print(std::cerr);
    if (JsonPath.empty())
      return;
    if (JsonPath == "-") {
      S.printJson(std::cout);
      return;
    }
    std::ofstream Out(JsonPath);
    if (!Out)
      std::cerr << "fgc: warning: cannot write stats to `" << JsonPath
                << "`\n";
    else
      S.printJson(Out);
  }
};

/// Expands batch path arguments: a directory stands for every `.fg`
/// file directly inside it, sorted by name.
bool expandBatchPaths(const std::vector<std::string> &Args,
                      std::vector<std::string> &Files) {
  namespace fs = std::filesystem;
  for (const std::string &Arg : Args) {
    std::error_code EC;
    if (fs::is_directory(Arg, EC)) {
      std::vector<std::string> Found;
      for (const auto &Entry : fs::directory_iterator(Arg, EC))
        if (Entry.path().extension() == ".fg")
          Found.push_back(Entry.path().string());
      std::sort(Found.begin(), Found.end());
      if (Found.empty()) {
        std::cerr << "fgc: error: no .fg files in `" << Arg << "`\n";
        return false;
      }
      Files.insert(Files.end(), Found.begin(), Found.end());
    } else {
      Files.push_back(Arg);
    }
  }
  return true;
}

int runBatchMode(const std::vector<std::string> &PathArgs,
                 const std::vector<std::string> &SearchPaths, unsigned Jobs,
                 const std::string &CacheDir, bool UseCache,
                 const CompileOptions &Opts) {
  std::vector<std::string> Files;
  if (!expandBatchPaths(PathArgs, Files))
    return 1;

  if (!CacheDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(CacheDir, EC);
    if (EC) {
      std::cerr << "fgc: error: cannot create module cache directory `"
                << CacheDir << "`: " << EC.message() << "\n";
      return 1;
    }
  }

  modules::ModuleLoader::Options LO;
  LO.SearchPaths = SearchPaths;
  modules::ModuleLoader Loader(LO);
  std::vector<std::string> Roots;
  for (const std::string &File : Files) {
    std::string Root, Error;
    if (!Loader.loadFile(File, Root, Error)) {
      std::cerr << "fgc: error: " << Error << "\n";
      return 1;
    }
    Roots.push_back(Root);
  }

  modules::BatchOptions BO;
  BO.Jobs = Jobs;
  BO.CacheDir = CacheDir;
  BO.UseCache = UseCache;
  BO.Verify = Opts.VerifyTranslation;
  BO.EnableModelCache = Opts.EnableModelCache;
  modules::BatchResult BR = modules::runBatch(Loader, Roots, BO);

  // Aggregate deterministically: runBatch already returns results in
  // dependency order (independent of worker scheduling), and failures
  // are re-sorted by module name so the diagnostic summary is stable
  // run over run and readable at corpus scale.
  unsigned Checked = 0, Cached = 0;
  std::vector<const modules::ModuleBuildResult *> Failed, Skipped;
  for (const modules::ModuleBuildResult &R : BR.Results) {
    if (R.Success)
      ++(R.CacheHit ? Cached : Checked);
    else if (R.Skipped)
      Skipped.push_back(&R);
    else
      Failed.push_back(&R);
  }

  // Per-module progress lines are useful at example scale and an
  // unreadable flood over a generated corpus; the summary line and the
  // sorted failure digest carry the signal either way.
  if (BR.Results.size() <= 32)
    for (const modules::ModuleBuildResult &R : BR.Results)
      if (R.Success)
        std::cout << "module " << R.Module << ": "
                  << (R.CacheHit ? "cached" : "checked") << "\n";

  auto ByName = [](const modules::ModuleBuildResult *A,
                   const modules::ModuleBuildResult *B) {
    return A->Module < B->Module;
  };
  std::sort(Failed.begin(), Failed.end(), ByName);
  std::sort(Skipped.begin(), Skipped.end(), ByName);
  const size_t MaxShown = 20;
  for (size_t I = 0; I < Failed.size() && I < MaxShown; ++I)
    std::cerr << "module " << Failed[I]->Module << ": error: "
              << Failed[I]->Error << "\n";
  if (Failed.size() > MaxShown)
    std::cerr << "... and " << Failed.size() - MaxShown
              << " more failed modules\n";
  for (size_t I = 0; I < Skipped.size() && I < MaxShown; ++I)
    std::cerr << "module " << Skipped[I]->Module << ": skipped ("
              << Skipped[I]->Error << ")\n";
  if (Skipped.size() > MaxShown)
    std::cerr << "... and " << Skipped.size() - MaxShown
              << " more skipped modules\n";

  std::cout << "batch: " << BR.Results.size() << " modules, " << Checked
            << " checked, " << Cached << " cached";
  if (!Failed.empty() || !Skipped.empty())
    std::cout << ", " << Failed.size() << " failed, " << Skipped.size()
              << " skipped";
  std::cout << "\n";
  return BR.Success ? 0 : 1;
}

int runGenCorpus(const corpus::CorpusOptions &Opts,
                 const std::string &OutDir) {
  std::vector<corpus::GeneratedModule> Mods = corpus::generate(Opts);
  std::string Error;
  if (!corpus::writeCorpus(Mods, OutDir, Error)) {
    std::cerr << "fgc: error: " << Error << "\n";
    return 1;
  }
  std::cout << "corpus: " << Mods.size() << " modules -> " << OutDir
            << " (seed " << Opts.Seed << ", shape "
            << corpus::shapeName(Opts.GraphShape) << ", root "
            << Mods.back().Name << ")\n";
  return 0;
}

int fgcMain(int Argc, char **Argv) {
  bool CheckOnly = false, PrintTranslation = false, PrintAst = false;
  bool Direct = false, Optimize = false, Batch = false, UseCache = true;
  bool DumpBytecode = false;
  sf::SpecializeLevel SpecLevel = sf::SpecializeLevel::Off;
  bool SpecSet = false;
  std::string Backend = "tree";
  aot::ToolchainOptions AotToolchain;
  unsigned Jobs = 1;
  unsigned FuzzCount = 0;
  uint64_t FuzzSeed = 42;
  // Default verification level: re-check the translation in debug
  // builds, nothing in release builds (BenchValidate measures why).
#ifndef NDEBUG
  validate::Mode VMode = validate::Mode::Translate;
#else
  validate::Mode VMode = validate::Mode::Off;
#endif
  bool VModeSet = false;
  std::vector<std::string> SearchPaths, Paths;
  std::string CacheDir;
  corpus::CorpusOptions CorpusOpts;
  unsigned GenCorpus = 0;
  std::string CorpusOut;
  CompileOptions Opts;
  StatsReporter Reporter;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--check")
      CheckOnly = true;
    else if (Arg == "--translate")
      PrintTranslation = true;
    else if (Arg == "--ast")
      PrintAst = true;
    else if (Arg == "--direct")
      Direct = true;
    else if (Arg == "--optimize" || Arg == "-O1")
      Optimize = true;
    else if (Arg == "-O2") {
      Optimize = true;
      SpecLevel = sf::SpecializeLevel::Full;
      SpecSet = true;
    } else if (Arg == "--specialize") {
      Optimize = true;
      SpecLevel = sf::SpecializeLevel::Full;
      SpecSet = true;
    } else if (Arg.rfind("--specialize=", 0) == 0) {
      std::string Value = Arg.substr(std::string("--specialize=").size());
      if (!sf::parseSpecializeLevel(Value, SpecLevel)) {
        std::cerr << "fgc: error: --specialize must be one of off, apps, "
                     "dicts, full\n";
        return usageError();
      }
      SpecSet = true;
      Optimize |= SpecLevel != sf::SpecializeLevel::Off;
    } else if (Arg == "--batch")
      Batch = true;
    else if (Arg == "--no-cache")
      UseCache = false;
    else if (Arg == "--dump-bytecode")
      DumpBytecode = true;
    else if (Arg == "--no-superinstructions")
      vm::defaultEmitOptions().Superinstructions = false;
    else if (Arg.rfind("--backend=", 0) == 0) {
      Backend = Arg.substr(std::string("--backend=").size());
      if (!isBackendName(Backend)) {
        std::cerr << "fgc: error: --backend must be one of "
                  << backendNameList() << "\n";
        return usageError();
      }
    } else if (Arg.rfind("--aot-cxx=", 0) == 0) {
      AotToolchain.Cxx = Arg.substr(std::string("--aot-cxx=").size());
      if (AotToolchain.Cxx.empty()) {
        std::cerr << "fgc: error: --aot-cxx= requires a compiler path\n";
        return usageError();
      }
    } else if (Arg.rfind("--aot-cache=", 0) == 0) {
      AotToolchain.CacheDir = Arg.substr(std::string("--aot-cache=").size());
      if (AotToolchain.CacheDir.empty()) {
        std::cerr << "fgc: error: --aot-cache= requires a directory\n";
        return usageError();
      }
    } else if (Arg == "--aot-keep-cpp")
      AotToolchain.KeepCpp = true;
    else if (Arg == "--no-verify") {
      VMode = validate::Mode::Off;
      VModeSet = true;
    } else if (Arg == "--validate") {
      VMode = validate::Mode::Passes;
      VModeSet = true;
    } else if (Arg.rfind("--validate=", 0) == 0) {
      std::string Value = Arg.substr(std::string("--validate=").size());
      if (!validate::parseMode(Value, VMode)) {
        std::cerr << "fgc: error: --validate must be one of off, "
                     "translate, passes\n";
        return usageError();
      }
      VModeSet = true;
    } else if (Arg == "--fuzz" || Arg.rfind("--fuzz=", 0) == 0) {
      std::string Value = Arg == "--fuzz"
                              ? (I + 1 < Argc ? Argv[++I] : "")
                              : Arg.substr(std::string("--fuzz=").size());
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0' || N == 0) {
        std::cerr << "fgc: error: --fuzz requires a positive number\n";
        return usageError();
      }
      FuzzCount = static_cast<unsigned>(N);
    } else if (Arg == "--seed" || Arg.rfind("--seed=", 0) == 0) {
      std::string Value = Arg == "--seed"
                              ? (I + 1 < Argc ? Argv[++I] : "")
                              : Arg.substr(std::string("--seed=").size());
      char *End = nullptr;
      unsigned long long N = std::strtoull(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0') {
        std::cerr << "fgc: error: --seed requires a number\n";
        return usageError();
      }
      FuzzSeed = N;
    }
    else if (Arg == "--gen-corpus" || Arg.rfind("--gen-corpus=", 0) == 0) {
      std::string Value =
          Arg == "--gen-corpus"
              ? (I + 1 < Argc ? Argv[++I] : "")
              : Arg.substr(std::string("--gen-corpus=").size());
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0' || N == 0) {
        std::cerr << "fgc: error: --gen-corpus requires a positive "
                     "module count\n";
        return usageError();
      }
      GenCorpus = static_cast<unsigned>(N);
    } else if (Arg == "--out" || Arg.rfind("--out=", 0) == 0) {
      CorpusOut = Arg == "--out" ? (I + 1 < Argc ? Argv[++I] : "")
                                 : Arg.substr(std::string("--out=").size());
      if (CorpusOut.empty()) {
        std::cerr << "fgc: error: --out requires a directory\n";
        return usageError();
      }
    } else if (Arg.rfind("--corpus-shape=", 0) == 0) {
      std::string Value = Arg.substr(std::string("--corpus-shape=").size());
      if (!corpus::parseShape(Value, CorpusOpts.GraphShape)) {
        std::cerr << "fgc: error: --corpus-shape must be one of layered, "
                     "chain, fanin\n";
        return usageError();
      }
    } else if (Arg.rfind("--corpus-layers=", 0) == 0) {
      std::string Value = Arg.substr(std::string("--corpus-layers=").size());
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0') {
        std::cerr << "fgc: error: --corpus-layers requires a number\n";
        return usageError();
      }
      CorpusOpts.Layers = static_cast<unsigned>(N);
    } else if (Arg.rfind("--corpus-max-imports=", 0) == 0) {
      std::string Value =
          Arg.substr(std::string("--corpus-max-imports=").size());
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0' || N == 0) {
        std::cerr << "fgc: error: --corpus-max-imports requires a "
                     "positive number\n";
        return usageError();
      }
      CorpusOpts.MaxImports = static_cast<unsigned>(N);
    } else if (Arg.rfind("--corpus-diamond=", 0) == 0) {
      std::string Value = Arg.substr(std::string("--corpus-diamond=").size());
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0' || N > 100) {
        std::cerr << "fgc: error: --corpus-diamond requires a percentage "
                     "(0-100)\n";
        return usageError();
      }
      CorpusOpts.DiamondPct = static_cast<unsigned>(N);
    } else if (Arg == "--stats")
      Reporter.Human = true;
    else if (Arg.rfind("--stats-json=", 0) == 0) {
      Reporter.JsonPath = Arg.substr(std::string("--stats-json=").size());
      if (Reporter.JsonPath.empty()) {
        std::cerr << "fgc: error: --stats-json= requires a file name\n";
        return usageError();
      }
    } else if (Arg.rfind("--module-cache=", 0) == 0) {
      CacheDir = Arg.substr(std::string("--module-cache=").size());
      if (CacheDir.empty()) {
        std::cerr << "fgc: error: --module-cache= requires a directory\n";
        return usageError();
      }
    } else if (Arg == "--no-model-cache")
      Opts.EnableModelCache = false;
    else if (Arg == "-j" || Arg.rfind("-j", 0) == 0) {
      std::string Value = Arg == "-j" ? (I + 1 < Argc ? Argv[++I] : "")
                                      : Arg.substr(2);
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0') {
        std::cerr << "fgc: error: -j requires a number\n";
        return usageError();
      }
      Jobs = static_cast<unsigned>(N);
    } else if (Arg == "-I" || Arg.rfind("-I", 0) == 0) {
      std::string Value = Arg == "-I" ? (I + 1 < Argc ? Argv[++I] : "")
                                      : Arg.substr(2);
      if (Value.empty()) {
        std::cerr << "fgc: error: -I requires a directory\n";
        return usageError();
      }
      SearchPaths.push_back(Value);
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-")
      return usageError();
    else
      Paths.push_back(Arg);
  }
  Opts.VerifyTranslation = VMode != validate::Mode::Off;
  if (Paths.empty() && FuzzCount == 0 && GenCorpus == 0)
    return usageError();
  if (!Batch && Paths.size() > 1)
    return usageError();
  if (Reporter.Human || !Reporter.JsonPath.empty())
    stats::Statistics::global().enable(true);

  if (GenCorpus != 0) {
    if (!Paths.empty() || Batch || FuzzCount != 0)
      return usageError();
    if (CorpusOut.empty()) {
      std::cerr << "fgc: error: --gen-corpus requires --out <dir>\n";
      return usageError();
    }
    CorpusOpts.Modules = GenCorpus;
    CorpusOpts.Seed = FuzzSeed;
    return runGenCorpus(CorpusOpts, CorpusOut);
  }

  if (FuzzCount != 0) {
    if (!Paths.empty() || Batch)
      return usageError();
    validate::FuzzOptions FO;
    FO.Count = FuzzCount;
    FO.Seed = FuzzSeed;
    // Fuzzing exists to exercise the validators; keep per-pass
    // checking on unless the user explicitly lowered the level.
    FO.ValidatePasses = !VModeSet || VMode == validate::Mode::Passes;
    FO.Specialize = SpecLevel;
    FO.Log = &std::cerr;
    if (Backend == "aot") {
      // Fuzzing the AOT backend is opt-in (each program costs a host
      // compile); degrade to a notice when no toolchain exists.
      std::string WhyNot;
      if (aot::toolchainAvailable(AotToolchain, &WhyNot)) {
        FO.IncludeAot = true;
        FO.AotToolchain = AotToolchain;
      } else {
        std::cerr << "fgc: note: skipping the aot backend in the fuzz "
                     "sweep: "
                  << WhyNot << "\n";
      }
    }
    validate::FuzzResult FR = validate::runFuzz(FO);
    std::cout << "fuzz: " << FR.Generated << " programs, "
              << FR.Failures.size() << " failures (seed " << FuzzSeed
              << ")\n";
    return FR.ok() ? 0 : 1;
  }

  if (Batch)
    return runBatchMode(Paths, SearchPaths, Jobs, CacheDir, UseCache, Opts);

  const std::string &Path = Paths[0];
  std::string Source;
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "fgc: error: cannot open `" << Path << "`\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  Frontend FE;
  CompileOutput Out;

  // A file with a module header routes through the loader: imports are
  // resolved and the graph is linked into one program, which then flows
  // through the same pipeline as a plain file.
  ModuleHeader Header;
  std::string HeaderError;
  bool IsModule = false;
  if (Path != "-") {
    if (!modules::ModuleLoader::scanHeader(Path, Source, Header,
                                           HeaderError)) {
      std::cerr << "fgc: error: " << HeaderError << "\n";
      return 1;
    }
    IsModule = Header.HasModuleDecl || !Header.Imports.empty();
  }
  if (IsModule) {
    modules::ModuleLoader::Options LO;
    LO.SearchPaths = SearchPaths;
    modules::ModuleLoader Loader(LO);
    std::string Root, Error;
    if (!Loader.loadFile(Path, Root, Error)) {
      std::cerr << "fgc: error: " << Error << "\n";
      return 1;
    }
    const Term *Program = Loader.link(FE, Root, Error);
    if (!Program) {
      std::cerr << "fgc: error: " << Error << "\n";
      std::cerr << FE.getDiags().render();
      return 1;
    }
    Out = FE.compileTerm(Program, Opts);
  } else {
    Out = FE.compile(Path == "-" ? "<stdin>" : Path, Source, Opts);
  }
  if (!Out.Success) {
    std::cerr << FE.getDiags().render();
    return 1;
  }
  if (VMode == validate::Mode::Passes) {
    validate::Validator V(FE.getSfContext(), FE.getPrelude().Types);
    sf::OptimizeOptions VOpts;
    VOpts.Specialize = SpecLevel;
    VOpts.PassHook = V.passHook(Out.SfType);
    sf::OptimizeStats VStats;
    FE.optimize(Out, &VStats, VOpts);
    if (V.failed()) {
      std::cerr << "fgc: " << V.error() << "\n";
      return 1;
    }
  }
  if (PrintAst)
    std::cout << "ast: " << termToString(Out.Ast) << "\n";
  if (PrintTranslation) {
    std::cout << "systemf: " << sf::termToString(Out.SfTerm) << "\n";
    if (Out.SfType)
      std::cout << "systemf-type: " << sf::typeToString(Out.SfType) << "\n";
  }
  if (DumpBytecode) {
    std::string Error;
    std::shared_ptr<const vm::Chunk> Chunk =
        vm::compile(Out.SfTerm, FE.getPrelude(), &Error);
    if (!Chunk) {
      std::cerr << "fgc: error: cannot compile to bytecode: " << Error
                << "\n";
      return 1;
    }
    std::cout << "bytecode:\n" << vm::disassemble(*Chunk);
  }
  std::cout << "type: " << typeToString(Out.FgType) << "\n";
  if (CheckOnly)
    return 0;

  sf::EvalResult R;
  if (Backend == "aot") {
    std::string WhyNot;
    if (!aot::toolchainAvailable(AotToolchain, &WhyNot)) {
      std::cerr << "fgc: error: --backend=aot is unavailable: " << WhyNot
                << "\n";
      return 2;
    }
    // The AOT backend exists to measure the paper's zero-overhead
    // claim, so it emits from the -O2-specialized term unless the user
    // pinned a specialization level explicitly.  The Stats argument
    // forces re-specialization at this level even if an earlier
    // validation pass populated Out.SfOptimized at another one.
    sf::OptimizeOptions SOpts;
    SOpts.Specialize = SpecSet ? SpecLevel : sf::SpecializeLevel::Full;
    sf::OptimizeStats AotStats;
    const sf::Term *T = FE.optimize(Out, &AotStats, SOpts);
    if (!T) {
      std::cerr << "fgc: error: optimization failed\n";
      return 1;
    }
    aot::RunInfo Info;
    R = aot::runAot(T, FE.getPrelude(), sf::EvalOptions(), AotToolchain,
                    &Info);
    if (!Info.CppPath.empty())
      std::cerr << "fgc: note: kept generated C++ at " << Info.CppPath
                << "\n";
  } else {
    R = Backend == "vm"        ? FE.runVm(Out)
        : Backend == "closure" ? FE.runCompiled(Out)
                               : FE.run(Out);
  }
  if (!R.ok()) {
    std::cerr << "runtime error: " << R.Error << "\n";
    return 1;
  }
  std::cout << "value: " << sf::valueToString(R.Val) << "\n";

  if (Optimize) {
    sf::OptimizeStats Stats;
    sf::OptimizeOptions SOpts;
    SOpts.Specialize = SpecLevel;
    FE.optimize(Out, &Stats, SOpts);
    std::cout << "specialized: " << sf::termToString(Out.SfOptimized)
              << "\n";
    std::cout << "  (nodes " << Stats.NodesBefore << " -> "
              << Stats.NodesAfter << ", " << Stats.TypeAppsInlined
              << " instantiations, " << Stats.LetsInlined
              << " lets inlined, " << Stats.ProjectionsFolded
              << " projections folded)\n";
    if (SpecLevel != sf::SpecializeLevel::Off) {
      std::cout << "  (specialize " << sf::specializeLevelName(SpecLevel)
                << ": " << Stats.ClonesCreated << " clones, "
                << Stats.SpecCacheHits << " cache hits, "
                << Stats.MembersDevirtualized << " members devirtualized, "
                << Stats.DictParamsEliminated << " params + "
                << Stats.DictFieldsEliminated << " fields dropped, "
                << Stats.BudgetHits << " budget hits)\n";
      if (Stats.BudgetHits != 0 && Reporter.Human)
        std::cerr << "fgc: note: the specialization size budget declined "
                  << Stats.BudgetHits
                  << " specialization(s) (specialize.budget_hits)\n";
    }
    sf::EvalResult O = FE.runOptimized(Out);
    if (!O.ok()) {
      std::cerr << "specialized evaluation error: " << O.Error << "\n";
      return 1;
    }
    std::cout << "optimized value: " << sf::valueToString(O.Val) << "\n";
    if (sf::valueToString(O.Val) != sf::valueToString(R.Val)) {
      std::cerr << "error: specialization changed the program's value\n";
      return 1;
    }
  }

  if (Direct) {
    interp::EvalResult D = FE.runDirect(Out);
    if (!D.ok()) {
      std::cerr << "direct interpreter error: " << D.Error << "\n";
      return 1;
    }
    std::cout << "direct: " << interp::valueToString(D.Val) << "\n";
    if (interp::valueToString(D.Val) != sf::valueToString(R.Val)) {
      std::cerr << "error: direct interpretation disagrees with the "
                   "translation\n";
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
#if defined(__unix__) || defined(__APPLE__)
  // Corpus-scale inputs recurse proportionally to program depth: a
  // 10k-module import chain links into a let spine tens of thousands
  // of levels deep, and the parser, checker, translator and
  // tree-walking evaluator all walk it recursively.  The default 8 MiB
  // main-thread stack overflows around that scale, so the driver runs
  // on a thread with a deep (lazily committed) stack instead.
  pthread_attr_t Attr;
  if (pthread_attr_init(&Attr) == 0) {
    struct Args {
      int Argc;
      char **Argv;
      int Ret;
    } A{Argc, Argv, 1};
    pthread_t Tid;
    if (pthread_attr_setstacksize(&Attr, size_t(512) << 20) == 0 &&
        pthread_create(
            &Tid, &Attr,
            [](void *P) -> void * {
              Args *A = static_cast<Args *>(P);
              A->Ret = fgcMain(A->Argc, A->Argv);
              return nullptr;
            },
            &A) == 0) {
      pthread_join(Tid, nullptr);
      pthread_attr_destroy(&Attr);
      return A.Ret;
    }
    pthread_attr_destroy(&Attr);
  }
#endif
  return fgcMain(Argc, Argv);
}
