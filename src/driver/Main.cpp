//===- driver/Main.cpp - The fgc command-line tool ------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver:
///
///   fgc [options] file.fg      compile and run an F_G program
///   fgc [options] -            read the program from stdin
///
/// Options:
///   --check        stop after typechecking; print the F_G type
///   --translate    print the System F translation and its type
///   --ast          print the parsed F_G program
///   --no-verify    skip re-checking the translation in System F
///   --direct       evaluate with the direct F_G interpreter instead of
///                  the System F translation (and cross-check the two)
///   --optimize     also specialize the translation (dictionary
///                  elimination), print it, and cross-check its value
///   --stats        print compiler statistics (phase timings, counter
///                  values, cache hit rates) to stderr on exit
///   --stats-json=<file>
///                  also write the statistics as JSON to <file>
///                  (`-` for stdout)
///   --no-model-cache
///                  disable the checker's model-resolution and
///                  congruence-query caches (for A/B comparison; the
///                  result must be identical either way)
///
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "syntax/Frontend.h"
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace fg;

namespace {

int usage() {
  std::cerr << "usage: fgc [--check] [--translate] [--ast] [--no-verify] "
               "[--direct] [--optimize] [--stats] [--stats-json=<file>] "
               "[--no-model-cache] <file.fg | ->\n";
  return 2;
}

/// Emits the accumulated statistics per the --stats/--stats-json flags.
/// Runs on every exit path once requested, so failed compilations still
/// report (that is when the numbers are most interesting).
struct StatsReporter {
  bool Human = false;
  std::string JsonPath;

  ~StatsReporter() {
    const stats::Statistics &S = stats::Statistics::global();
    if (Human)
      S.print(std::cerr);
    if (JsonPath.empty())
      return;
    if (JsonPath == "-") {
      S.printJson(std::cout);
      return;
    }
    std::ofstream Out(JsonPath);
    if (!Out)
      std::cerr << "fgc: warning: cannot write stats to `" << JsonPath
                << "`\n";
    else
      S.printJson(Out);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  bool CheckOnly = false, PrintTranslation = false, PrintAst = false;
  bool Direct = false, Optimize = false;
  CompileOptions Opts;
  std::string Path;
  StatsReporter Reporter;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--check")
      CheckOnly = true;
    else if (Arg == "--translate")
      PrintTranslation = true;
    else if (Arg == "--ast")
      PrintAst = true;
    else if (Arg == "--direct")
      Direct = true;
    else if (Arg == "--optimize")
      Optimize = true;
    else if (Arg == "--no-verify")
      Opts.VerifyTranslation = false;
    else if (Arg == "--stats")
      Reporter.Human = true;
    else if (Arg.rfind("--stats-json=", 0) == 0) {
      Reporter.JsonPath = Arg.substr(std::string("--stats-json=").size());
      if (Reporter.JsonPath.empty()) {
        std::cerr << "fgc: error: --stats-json= requires a file name\n";
        return usage();
      }
    }
    else if (Arg == "--no-model-cache")
      Opts.EnableModelCache = false;
    else if (Arg == "--help" || Arg == "-h")
      return usage();
    else if (!Arg.empty() && Arg[0] == '-' && Arg != "-")
      return usage();
    else if (Path.empty())
      Path = Arg;
    else
      return usage();
  }
  if (Path.empty())
    return usage();
  if (Reporter.Human || !Reporter.JsonPath.empty())
    stats::Statistics::global().enable(true);

  std::string Source;
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::cerr << "fgc: error: cannot open `" << Path << "`\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  Frontend FE;
  CompileOutput Out = FE.compile(Path == "-" ? "<stdin>" : Path, Source,
                                 Opts);
  if (!Out.Success) {
    std::cerr << FE.getDiags().render();
    return 1;
  }
  if (PrintAst)
    std::cout << "ast: " << termToString(Out.Ast) << "\n";
  if (PrintTranslation) {
    std::cout << "systemf: " << sf::termToString(Out.SfTerm) << "\n";
    if (Out.SfType)
      std::cout << "systemf-type: " << sf::typeToString(Out.SfType) << "\n";
  }
  std::cout << "type: " << typeToString(Out.FgType) << "\n";
  if (CheckOnly)
    return 0;

  sf::EvalResult R = FE.run(Out);
  if (!R.ok()) {
    std::cerr << "runtime error: " << R.Error << "\n";
    return 1;
  }
  std::cout << "value: " << sf::valueToString(R.Val) << "\n";

  if (Optimize) {
    sf::OptimizeStats Stats;
    FE.optimize(Out, &Stats);
    std::cout << "specialized: " << sf::termToString(Out.SfOptimized)
              << "\n";
    std::cout << "  (nodes " << Stats.NodesBefore << " -> "
              << Stats.NodesAfter << ", " << Stats.TypeAppsInlined
              << " instantiations, " << Stats.LetsInlined
              << " lets inlined, " << Stats.ProjectionsFolded
              << " projections folded)\n";
    sf::EvalResult O = FE.runOptimized(Out);
    if (!O.ok()) {
      std::cerr << "specialized evaluation error: " << O.Error << "\n";
      return 1;
    }
    std::cout << "optimized value: " << sf::valueToString(O.Val) << "\n";
    if (sf::valueToString(O.Val) != sf::valueToString(R.Val)) {
      std::cerr << "error: specialization changed the program's value\n";
      return 1;
    }
  }

  if (Direct) {
    interp::EvalResult D = FE.runDirect(Out);
    if (!D.ok()) {
      std::cerr << "direct interpreter error: " << D.Error << "\n";
      return 1;
    }
    std::cout << "direct: " << interp::valueToString(D.Val) << "\n";
    if (interp::valueToString(D.Val) != sf::valueToString(R.Val)) {
      std::cerr << "error: direct interpretation disagrees with the "
                   "translation\n";
      return 1;
    }
  }
  return 0;
}
