//===- driver/Fgcd.cpp - The fgcd compiler server -------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent compiler daemon and interactive REPL:
///
///   fgcd --socket PATH [options]   serve the JSON protocol on a Unix
///                                  socket (docs/PROTOCOL.md)
///   fgcd --stdio [options]         serve one protocol session over
///                                  stdin/stdout
///   fgcd --repl [options]          interactive REPL (docs/REPL.md)
///
/// One of the three modes is required.  The daemon keeps typechecker
/// artifacts warm across requests in a shared content-hash cache, so a
/// fleet of editors or CI jobs re-checking mostly-unchanged programs
/// pays the compile cost once.
///
//===----------------------------------------------------------------------===//

#include "server/Repl.h"
#include "server/Server.h"
#include "support/Backends.h"
#include "support/Stats.h"
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

using namespace fg;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: fgcd --socket <path> [options]\n"
        "       fgcd --stdio [options]\n"
        "       fgcd --repl [options]\n"
        "\n"
        "modes (exactly one):\n"
        "  --socket <path>        serve the line-delimited JSON protocol\n"
        "                         (docs/PROTOCOL.md) on a Unix socket;\n"
        "                         runs until a `shutdown` request\n"
        "  --stdio                serve one protocol session over\n"
        "                         stdin/stdout (for editors and tests)\n"
        "  --repl                 interactive read-eval-print loop with\n"
        "                         incremental declarations (docs/REPL.md)\n"
        "\n"
        "backends (the protocol's `backend` parameter; see fgc\n"
        "--backend=):\n"
     << backendHelpTable("  ")
     << "\n"
        "options:\n"
        "  --threads <n>          socket worker pool size; up to <n>\n"
        "                         sessions compile concurrently\n"
        "                         (0 = all hardware threads, the default)\n"
        "  --cache-entries <n>    shared artifact-cache capacity\n"
        "                         (default 4096 entries)\n"
        "  -I <dir>               add a module search path (repeatable);\n"
        "                         used by path requests and :load\n"
        "  --stats                print compiler statistics to stderr on\n"
        "                         exit\n"
        "  --stats-json=<file>    also write the statistics as JSON to\n"
        "                         <file> (- for stdout)\n"
        "  --help, -h             print this help\n";
}

int usageError() {
  printUsage(std::cerr);
  return 2;
}

/// Same exit-path statistics emission discipline as fgc (Main.cpp).
struct StatsReporter {
  bool Human = false;
  std::string JsonPath;

  ~StatsReporter() {
    const stats::Statistics &S = stats::Statistics::global();
    if (Human)
      S.print(std::cerr);
    if (JsonPath.empty())
      return;
    if (JsonPath == "-") {
      S.printJson(std::cout);
      return;
    }
    std::ofstream Out(JsonPath);
    if (!Out)
      std::cerr << "fgcd: warning: cannot write stats to `" << JsonPath
                << "`\n";
    else
      S.printJson(Out);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  bool Stdio = false, Repl = false;
  unsigned Threads = 0;
  size_t CacheEntries = 4096;
  std::vector<std::string> SearchPaths;
  StatsReporter Reporter;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--socket" || Arg.rfind("--socket=", 0) == 0) {
      std::string Value = Arg == "--socket"
                              ? (I + 1 < Argc ? Argv[++I] : "")
                              : Arg.substr(std::string("--socket=").size());
      if (Value.empty()) {
        std::cerr << "fgcd: error: --socket requires a path\n";
        return usageError();
      }
      SocketPath = Value;
    } else if (Arg == "--stdio")
      Stdio = true;
    else if (Arg == "--repl")
      Repl = true;
    else if (Arg == "--threads" || Arg.rfind("--threads=", 0) == 0) {
      std::string Value = Arg == "--threads"
                              ? (I + 1 < Argc ? Argv[++I] : "")
                              : Arg.substr(std::string("--threads=").size());
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0') {
        std::cerr << "fgcd: error: --threads requires a number\n";
        return usageError();
      }
      Threads = static_cast<unsigned>(N);
    } else if (Arg == "--cache-entries" ||
               Arg.rfind("--cache-entries=", 0) == 0) {
      std::string Value =
          Arg == "--cache-entries"
              ? (I + 1 < Argc ? Argv[++I] : "")
              : Arg.substr(std::string("--cache-entries=").size());
      char *End = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0' || N == 0) {
        std::cerr << "fgcd: error: --cache-entries requires a positive "
                     "number\n";
        return usageError();
      }
      CacheEntries = static_cast<size_t>(N);
    } else if (Arg == "-I" || Arg.rfind("-I", 0) == 0) {
      std::string Value = Arg == "-I" ? (I + 1 < Argc ? Argv[++I] : "")
                                      : Arg.substr(2);
      if (Value.empty()) {
        std::cerr << "fgcd: error: -I requires a directory\n";
        return usageError();
      }
      SearchPaths.push_back(Value);
    } else if (Arg == "--stats")
      Reporter.Human = true;
    else if (Arg.rfind("--stats-json=", 0) == 0) {
      Reporter.JsonPath = Arg.substr(std::string("--stats-json=").size());
      if (Reporter.JsonPath.empty()) {
        std::cerr << "fgcd: error: --stats-json= requires a file name\n";
        return usageError();
      }
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else
      return usageError();
  }

  int Modes = (SocketPath.empty() ? 0 : 1) + (Stdio ? 1 : 0) + (Repl ? 1 : 0);
  if (Modes != 1)
    return usageError();
  if (Reporter.Human || !Reporter.JsonPath.empty())
    stats::Statistics::global().enable(true);

  // A client vanishing mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  server::Session::Options SO;
  SO.SearchPaths = SearchPaths;

  if (Stdio || Repl) {
    auto Cache = std::make_shared<server::ArtifactCache>(CacheEntries);
    server::Session S(Cache, SO);
    if (Repl) {
      server::ReplOptions RO;
      return server::runRepl(S, std::cin, std::cout, RO);
    }
    server::serveStream(S, std::cin, std::cout);
    return 0;
  }

  server::ServerOptions Opts;
  Opts.SocketPath = SocketPath;
  Opts.Threads = Threads;
  Opts.CacheEntries = CacheEntries;
  Opts.SessionOpts = SO;
  server::Server Srv(std::move(Opts));
  std::string Error;
  if (!Srv.start(Error)) {
    std::cerr << "fgcd: error: " << Error << "\n";
    return 1;
  }
  std::cerr << "fgcd: listening on " << Srv.socketPath() << "\n";
  Srv.wait();
  Srv.stop();
  return 0;
}
