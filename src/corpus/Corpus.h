//===- corpus/Corpus.h - Seeded synthetic module-graph generator ----------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator for well-typed multi-module F_G programs,
/// used to exercise the separate-compilation pipeline at scales the
/// hand-written corpora (examples/fglib, tests/conformance) cannot
/// reach: hundreds to tens of thousands of modules with controllable
/// graph shape.
///
/// The generated programs are modeled on the fglib idioms: foundation
/// modules declare a concept, an ambient `int` model, and a generic
/// function; downstream modules refine imported concepts, add named
/// models activated with `use`, declare associated-type concepts over
/// `list int`, or simply combine imported values and generics.  Every
/// module is well-typed by construction, so `fgc --batch` over a
/// generated corpus must always succeed — any failure is a compiler
/// bug, not a corpus bug.
///
/// Determinism contract: `generate` depends only on `CorpusOptions`.
/// The same options produce byte-identical sources on every platform
/// and build configuration.  The generator therefore uses its own
/// splitmix64 PRNG (never `std::uniform_int_distribution`, whose
/// output is implementation-defined) and never iterates unordered
/// containers.
///
//===----------------------------------------------------------------------===//

#ifndef FG_CORPUS_CORPUS_H
#define FG_CORPUS_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace fg {
namespace corpus {

/// Overall dependency-graph silhouette.
enum class Shape {
  /// Modules are arranged in layers; each module imports from earlier
  /// layers, producing the diamond-rich DAGs typical of real
  /// libraries.  This is the default.
  Layered,
  /// One maximal-depth chain: module k imports only module k-1.
  /// Stresses recursion depth and cascading invalidation.
  Chain,
  /// Independent foundations plus one root importing all of them.
  /// Stresses wide fan-in and the batch scheduler's wavefront.
  FanIn,
};

/// Parses a shape name (`layered`, `chain`, `fanin`); returns false on
/// an unknown name.
bool parseShape(const std::string &Name, Shape &Out);
const char *shapeName(Shape S);

struct CorpusOptions {
  /// Number of modules to generate (>= 1).
  unsigned Modules = 100;
  /// PRNG seed; the sole source of variation besides the other knobs.
  uint64_t Seed = 42;
  /// Layer count for Shape::Layered; 0 picks a proportionate default.
  unsigned Layers = 0;
  /// Maximum direct imports per module (Layered only; >= 1).
  unsigned MaxImports = 4;
  /// Percentage (0-100) of import edges that reach past the
  /// immediately preceding layer, creating diamonds (Layered only).
  unsigned DiamondPct = 35;
  Shape GraphShape = Shape::Layered;
};

/// One generated module: the file `Name + ".fg"` with contents
/// `Source`; `Imports` lists the direct dependencies (also generated
/// module names) for callers that want the graph without re-parsing.
struct GeneratedModule {
  std::string Name;
  std::vector<std::string> Imports;
  std::string Source;
};

/// Generates the corpus described by `Opts`.  Deterministic: equal
/// options yield byte-identical results.  The final module of the
/// vector is a root that (transitively) reaches every other module.
std::vector<GeneratedModule> generate(const CorpusOptions &Opts);

/// Writes each module to `Dir/<Name>.fg`, creating `Dir` if needed.
/// Returns false and sets `Error` on I/O failure.
bool writeCorpus(const std::vector<GeneratedModule> &Mods,
                 const std::string &Dir, std::string &Error);

} // namespace corpus
} // namespace fg

#endif // FG_CORPUS_CORPUS_H
