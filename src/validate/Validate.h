//===- validate/Validate.h - Translation validation -------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation for the F_G compiler.  The paper proves its
/// Theorems 1 and 2 on paper; this layer makes them executable:
///
///  * After Translate, the System F typechecker re-checks the emitted
///    term and its type is compared (one pointer comparison, thanks to
///    hash-consing) against the System F image of the program's F_G
///    type.  Frontend::compile runs this when VerifyTranslation is on.
///
///  * During Optimize, a Validator's passHook() re-typechecks each
///    individual pass's output, so a type-breaking rewrite is caught
///    immediately and attributed to the pass by name, with the
///    smallest ill-typed subterm pretty-printed for debugging.
///
/// The driver exposes both under `--validate[=off|translate|passes]`,
/// and the fuzzer (validate/Fuzz.h) drives them with generated
/// programs.
///
//===----------------------------------------------------------------------===//

#ifndef FG_VALIDATE_VALIDATE_H
#define FG_VALIDATE_VALIDATE_H

#include "systemf/Optimize.h"
#include "systemf/Term.h"
#include "systemf/TypeCheck.h"
#include <functional>
#include <string>
#include <string_view>

namespace fg {
namespace validate {

/// How much of the pipeline to re-verify.
enum class Mode {
  Off,       ///< No dynamic verification.
  Translate, ///< Re-typecheck the translation (Theorems 1 and 2).
  Passes,    ///< Translate, plus re-typecheck every optimizer pass.
};

/// Parses a `--validate=` argument value.  Returns false on an
/// unrecognized spelling.
bool parseMode(std::string_view Text, Mode &Out);

/// The canonical spelling of \p M (the inverse of parseMode).
const char *modeName(Mode M);

/// Re-typechecks System F terms against a fixed environment and
/// latches the first failure with a pass-attributed, pretty-printed
/// explanation.  One Validator serves one compilation; reset() allows
/// reuse.
class Validator {
public:
  /// \p BaseEnv is the typing of the free variables the checked terms
  /// may reference — the prelude, plus imports for modules.
  Validator(sf::TypeContext &Ctx, sf::TypeEnv BaseEnv)
      : Ctx(Ctx), BaseEnv(std::move(BaseEnv)) {}

  /// Theorem 2, executable: re-typechecks \p T and compares its type
  /// against \p Expected (the System F image of the program's F_G
  /// type; may be null when unknown, reducing this to Theorem 1).
  /// Returns true when the check passes.
  bool checkTranslation(const sf::Term *T, const sf::Type *Expected);

  /// Re-typechecks one optimizer pass's output.  On failure, latches
  /// an error naming \p PassName and pretty-printing the smallest
  /// ill-typed subterm, and returns false.
  bool checkPass(const char *PassName, const sf::Term *After,
                 const sf::Type *Expected);

  /// Builds an OptimizeOptions::PassHook that re-typechecks every
  /// changed pass output against \p Expected.  The hook returns false
  /// on the first failure, which makes the optimizer stop and return
  /// the last validated term (OptimizeStats::AbortedOnPass records the
  /// offender too).
  std::function<bool(const char *, const sf::Term *, const sf::Term *)>
  passHook(const sf::Type *Expected);

  bool failed() const { return !Error.empty(); }
  const std::string &error() const { return Error; }
  /// Name of the pass whose output failed, empty when no pass failed.
  const std::string &failedPass() const { return FailedPass; }

  void reset() {
    Error.clear();
    FailedPass.clear();
  }

  /// Finds the smallest subterm of \p T that is ill-typed while all of
  /// its children (under their binding environments) typecheck — the
  /// node where typing actually breaks.  Returns null when \p T is
  /// well typed.
  const sf::Term *findSmallestIllTyped(const sf::Term *T);

private:
  sf::TypeContext &Ctx;
  sf::TypeEnv BaseEnv;
  /// Scratch terms built while re-wrapping subterms of type
  /// abstractions during the ill-typed-subterm descent.
  sf::TermArena Scratch;
  std::string Error;
  std::string FailedPass;
};

} // namespace validate
} // namespace fg

#endif // FG_VALIDATE_VALIDATE_H
