//===- validate/Fuzz.cpp - Well-typed F_G program fuzzer ------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "validate/Fuzz.h"
#include "support/Stats.h"
#include "syntax/Frontend.h"
#include "validate/Validate.h"
#include <atomic>
#include <ostream>
#include <random>
#include <sstream>

using namespace fg;
using namespace fg::validate;

namespace {

/// Builds one well-typed-by-construction program.  Each program picks
/// one or two "scenarios" — a coherent bundle of concept/model
/// declarations plus generic functions exercising them (folds,
/// refinement, associated types, same-type constraints, fixpoints) —
/// then wires their calls together with a small typed expression
/// grammar over int/bool/list-int.  Name suffixes keep scenarios from
/// colliding, so any combination composes.
struct Gen {
  std::mt19937_64 Rng;
  std::string Decls;
  /// Generators of int-typed call expressions into the scenarios'
  /// generic functions; invoked only at the final-expression position
  /// where all locals are in scope.
  std::vector<std::string (Gen::*)(const std::string &)> CallKinds;
  std::vector<std::string> CallSuffixes;
  std::vector<std::string> IntLocals;

  explicit Gen(uint64_t Seed) : Rng(Seed) {}

  unsigned pick(unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  }
  std::string lit() { return std::to_string(pick(10)); }

  std::string genInt(unsigned Depth) {
    unsigned Choice = Depth == 0 ? pick(2) : pick(6);
    switch (Choice) {
    case 0:
      return lit();
    case 1:
      if (!IntLocals.empty())
        return IntLocals[pick(IntLocals.size())];
      return lit();
    case 2:
      return "iadd(" + genInt(Depth - 1) + ", " + genInt(Depth - 1) + ")";
    case 3:
      return "isub(" + genInt(Depth - 1) + ", " + genInt(Depth - 1) + ")";
    case 4:
      return "imult(" + genInt(Depth - 1) + ", " + genInt(Depth - 1) + ")";
    default:
      return "(if " + genBool(Depth - 1) + " then " + genInt(Depth - 1) +
             " else " + genInt(Depth - 1) + ")";
    }
  }

  std::string genBool(unsigned Depth) {
    unsigned Choice = Depth == 0 ? pick(2) : pick(6);
    switch (Choice) {
    case 0:
      return "true";
    case 1:
      return "false";
    case 2:
      return "ieq(" + genInt(Depth - 1) + ", " + genInt(Depth - 1) + ")";
    case 3:
      return "ilt(" + genInt(Depth - 1) + ", " + genInt(Depth - 1) + ")";
    case 4:
      return "band(" + genBool(Depth - 1) + ", " + genBool(Depth - 1) + ")";
    default:
      return "bnot(" + genBool(Depth - 1) + ")";
    }
  }

  std::string genListInt() {
    std::string E = "nil[int]";
    for (unsigned I = 0, N = pick(4); I != N; ++I)
      E = "cons[int](" + genInt(1) + ", " + E + ")";
    return E;
  }

  // -- Scenarios.  Each emit* appends declarations (suffixed with S)
  // -- and registers the call generators that use them.

  void addCall(std::string (Gen::*Kind)(const std::string &),
               const std::string &S) {
    CallKinds.push_back(Kind);
    CallSuffixes.push_back(S);
  }

  /// Monoid-ish concept with a binary op and a unit; a generic
  /// two-argument fold over it (paper Figure 5 in miniature).
  void emitMonoidFold(const std::string &S) {
    bool Mult = pick(2) != 0;
    Decls += "concept Mono" + S + "<t> { binop : fn(t,t) -> t; unit : t; } "
             "in\n";
    Decls += "model Mono" + S + "<int> { binop = " +
             (Mult ? "imult" : "iadd") + "; unit = " + (Mult ? "1" : "0") +
             "; } in\n";
    Decls += "let fold2" + S + " = (forall t where Mono" + S + "<t>. "
             "fun(x : t, y : t). Mono" + S + "<t>.binop(Mono" + S +
             "<t>.binop(x, y), Mono" + S + "<t>.unit)) in\n";
    addCall(&Gen::callMonoidFold, S);
  }
  std::string callMonoidFold(const std::string &S) {
    return "fold2" + S + "[int](" + genInt(2) + ", " + genInt(2) + ")";
  }

  /// A `show`-style concept modeled at two types; calls pick the
  /// instantiation type at random.
  void emitShowSum(const std::string &S) {
    Decls += "concept Show" + S + "<t> { show : fn(t) -> int; } in\n";
    Decls += "model Show" + S + "<int> { show = fun(x : int). imult(x, " +
             lit() + "); } in\n";
    Decls += "model Show" + S + "<bool> { show = fun(b : bool). if b then " +
             lit() + " else " + lit() + "; } in\n";
    Decls += "let sum2" + S + " = (forall t where Show" + S + "<t>. "
             "fun(x : t, y : t). iadd(Show" + S + "<t>.show(x), Show" + S +
             "<t>.show(y))) in\n";
    addCall(&Gen::callShowSum, S);
  }
  std::string callShowSum(const std::string &S) {
    if (pick(2))
      return "sum2" + S + "[bool](" + genBool(2) + ", " + genBool(2) + ")";
    return "sum2" + S + "[int](" + genInt(2) + ", " + genInt(2) + ")";
  }

  /// Associated type `s` with conversions through it, plus a generic
  /// gated on the same-type constraint `Conv<t>.s == bool` (paper
  /// Section 5's same-type constraints).
  void emitAssocConv(const std::string &S) {
    Decls += "concept Conv" + S + "<t> { types s; conv : fn(t) -> s; "
             "comb : fn(s, t) -> t; } in\n";
    Decls += "model Conv" + S + "<int> { types s = bool; "
             "conv = fun(x : int). ilt(x, " + lit() + "); "
             "comb = fun(b : bool, x : int). if b then x else " + lit() +
             "; } in\n";
    Decls += "let pipe" + S + " = (forall t where Conv" + S + "<t>. "
             "fun(x : t). Conv" + S + "<t>.comb(Conv" + S +
             "<t>.conv(x), x)) in\n";
    Decls += "let gate" + S + " = (forall t where Conv" + S + "<t>, Conv" +
             S + "<t>.s == bool. fun(x : t, y : t). if Conv" + S +
             "<t>.conv(x) then y else x) in\n";
    addCall(&Gen::callAssocPipe, S);
    addCall(&Gen::callAssocGate, S);
  }
  std::string callAssocPipe(const std::string &S) {
    return "pipe" + S + "[int](" + genInt(2) + ")";
  }
  std::string callAssocGate(const std::string &S) {
    return "gate" + S + "[int](" + genInt(2) + ", " + genInt(2) + ")";
  }

  /// Refinement: Dbl refines Show; the generic reaches the refined
  /// concept's member through the Dbl constraint alone.
  void emitRefinement(const std::string &S) {
    Decls += "concept ShowR" + S + "<t> { show : fn(t) -> int; } in\n";
    Decls += "concept Dbl" + S + "<t> { refines ShowR" + S + "<t>; "
             "dbl : fn(t) -> t; } in\n";
    Decls += "model ShowR" + S + "<int> { show = fun(x : int). iadd(x, " +
             lit() + "); } in\n";
    Decls += "model Dbl" + S + "<int> { dbl = fun(x : int). imult(x, 2); } "
             "in\n";
    Decls += "let shdb" + S + " = (forall t where Dbl" + S + "<t>. "
             "fun(x : t). ShowR" + S + "<t>.show(Dbl" + S +
             "<t>.dbl(x))) in\n";
    addCall(&Gen::callRefinement, S);
  }
  std::string callRefinement(const std::string &S) {
    return "shdb" + S + "[int](" + genInt(2) + ")";
  }

  /// Same-type constraint between two type parameters, no concepts
  /// (conformance fixture 013's shape).
  void emitSameTypePick(const std::string &S) {
    std::string Cond =
        pick(2) ? "ilt(" + lit() + ", " + lit() + ")" : genBool(0);
    Decls += "let pick" + S + " = (forall a, b where a == b. "
             "fun(x : a, y : b). if " + Cond + " then x else y) in\n";
    addCall(&Gen::callSameTypePick, S);
  }
  std::string callSameTypePick(const std::string &S) {
    return "pick" + S + "[int, int](" + genInt(2) + ", " + genInt(2) + ")";
  }

  /// Generic fix-based list fold over the monoid concept (paper
  /// Figure 5's accumulate).
  void emitListFold(const std::string &S) {
    bool Mult = pick(2) != 0;
    Decls += "concept MonoL" + S + "<t> { binop : fn(t,t) -> t; unit : t; } "
             "in\n";
    Decls += "model MonoL" + S + "<int> { binop = " +
             (Mult ? "imult" : "iadd") + "; unit = " + (Mult ? "1" : "0") +
             "; } in\n";
    Decls += "let fold" + S + " = (forall t where MonoL" + S + "<t>. "
             "fix (fun(go : fn(list t) -> t). fun(ls : list t). "
             "if null[t](ls) then MonoL" + S + "<t>.unit "
             "else MonoL" + S + "<t>.binop(car[t](ls), go(cdr[t](ls)))))"
             " in\n";
    addCall(&Gen::callListFold, S);
  }
  std::string callListFold(const std::string &S) {
    return "fold" + S + "[int](" + genListInt() + ")";
  }

  /// Deeply nested values: a tuple-of-tuple pyramid peeled back with
  /// `nth`, or a cons spine walked down with cdr/car.  Biased deep on
  /// purpose — rendering, equality, and destruction of nested values
  /// must stay iterative in every engine (the recursive-destruction
  /// bug family), and the per-node accounting must agree across
  /// backends on value-heavy programs with almost no calls.
  void emitDeepNest(const std::string &S) {
    Decls += "let id" + S + " = (forall t. fun(x : t). x) in\n";
    addCall(&Gen::callDeepNest, S);
  }
  std::string callDeepNest(const std::string &S) {
    unsigned Depth = 8 + pick(25);
    if (pick(2)) {
      // ((((x, k), k), ...), peeled back to x with `nth _ 0`.
      std::string E = genInt(1);
      for (unsigned I = 0; I != Depth; ++I)
        E = "(" + E + ", " + lit() + ")";
      for (unsigned I = 0; I != Depth; ++I)
        E = "nth (" + E + ") 0";
      return "id" + S + "[int](" + E + ")";
    }
    // A cons spine walked part-way down with cdr, then car.
    std::string E = "nil[int]";
    for (unsigned I = 0; I != Depth; ++I)
      E = "cons[int](" + genInt(1) + ", " + E + ")";
    for (unsigned I = 0, N = pick(Depth); I != N; ++I)
      E = "cdr[int](" + E + ")";
    return "car[int](" + E + ")";
  }

  std::string makeCall(unsigned I) {
    return (this->*CallKinds[I])(CallSuffixes[I]);
  }

  std::string program() {
    void (Gen::*Scenarios[])(const std::string &) = {
        &Gen::emitMonoidFold, &Gen::emitShowSum,      &Gen::emitAssocConv,
        &Gen::emitRefinement, &Gen::emitSameTypePick, &Gen::emitListFold,
        &Gen::emitDeepNest,
    };
    unsigned NumScenarios = 1 + pick(2);
    for (unsigned I = 0; I != NumScenarios; ++I)
      (this->*Scenarios[pick(7)])(std::string(1, char('A' + I)));

    std::ostringstream OS;
    OS << Decls;
    for (unsigned I = 0, N = pick(3); I != N; ++I) {
      std::string Name = "x" + std::to_string(I);
      OS << "let " << Name << " = " << genInt(2) << " in\n";
      IntLocals.push_back(Name);
    }

    std::string E = makeCall(pick(CallKinds.size()));
    if (pick(2))
      E = "iadd(" + E + ", " + makeCall(pick(CallKinds.size())) + ")";
    if (pick(2)) {
      IntLocals.push_back("r");
      OS << "let r = " << E << " in\n";
      E = "iadd(r, " + genInt(1) + ")";
    }
    OS << E << "\n";
    return OS.str();
  }
};

/// Runs one generated program through the full validation surface.
/// Returns an empty string on success, a failure description
/// otherwise.
std::string checkOne(const std::string &Source, unsigned Index,
                     const FuzzOptions &Opts) {
  Frontend FE;
  CompileOutput Out =
      FE.compile("fuzz-" + std::to_string(Index) + ".fg", Source);
  if (!Out.Success)
    return "compilation failed: " + Out.ErrorMessage;

  {
    // Optimize up front (at the requested specialization level) so the
    // `optimized` backend below evaluates exactly the pipeline under
    // test, with per-pass re-typechecking when requested.
    Validator V(FE.getSfContext(), FE.getPrelude().Types);
    sf::OptimizeOptions OptOpts;
    OptOpts.Specialize = Opts.Specialize;
    if (Opts.ValidatePasses)
      OptOpts.PassHook = V.passHook(Out.SfType);
    sf::OptimizeStats Stats;
    FE.optimize(Out, &Stats, OptOpts);
    if (V.failed())
      return V.error();
  }

  struct Outcome {
    const char *Name;
    bool Ok;
    std::string Rendered;
  };
  std::vector<Outcome> Results;
  auto addSf = [&](const char *Name, const sf::EvalResult &R) {
    Results.push_back(
        {Name, R.ok(), R.ok() ? sf::valueToString(R.Val) : R.Error});
  };
  addSf("tree", FE.run(Out));
  addSf("closure", FE.runCompiled(Out));
  addSf("vm", FE.runVm(Out));
  addSf("optimized", FE.runOptimized(Out));
  if (Opts.IncludeAot)
    addSf("aot", FE.runAot(Out, sf::EvalOptions(), Opts.AotToolchain));
  interp::EvalResult Direct = FE.runDirect(Out);
  Results.push_back({"direct", Direct.ok(),
                     Direct.ok() ? interp::valueToString(Direct.Val)
                                 : Direct.Error});

  const Outcome &Ref = Results.front();
  if (!Ref.Ok)
    return "generated program failed at runtime: " + Ref.Rendered;
  for (size_t I = 1; I != Results.size(); ++I)
    if (Results[I].Ok != Ref.Ok || Results[I].Rendered != Ref.Rendered)
      return std::string("backend `") + Results[I].Name +
             "` disagrees with `" + Ref.Name + "`: `" + Results[I].Rendered +
             "` vs `" + Ref.Rendered + "`";
  return {};
}

} // namespace

std::string validate::generateProgram(uint64_t Seed, unsigned Index) {
  // Golden-ratio odd multiplier decorrelates per-index streams.
  Gen G(Seed ^ (0x9E3779B97F4A7C15ull * (uint64_t(Index) + 1)));
  return G.program();
}

FuzzResult validate::runFuzz(const FuzzOptions &Opts) {
  static std::atomic<uint64_t> &Programs =
      stats::Statistics::global().counter("validate.fuzz.programs");
  static std::atomic<uint64_t> &Failed =
      stats::Statistics::global().counter("validate.fuzz.failures");
  stats::ScopedTimer Timer("validate.fuzz");

  FuzzResult R;
  for (unsigned I = 0; I != Opts.Count; ++I) {
    std::string Source = generateProgram(Opts.Seed, I);
    ++R.Generated;
    ++Programs;
    std::string Message = checkOne(Source, I, Opts);
    if (!Message.empty()) {
      ++Failed;
      R.Failures.push_back({I, Source, Message});
      if (Opts.Log)
        *Opts.Log << "fuzz[" << I << "]: " << Message << "\nprogram:\n"
                  << Source << '\n';
    }
  }
  return R;
}
