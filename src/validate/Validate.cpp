//===- validate/Validate.cpp - Translation validation ---------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "validate/Validate.h"
#include "support/Stats.h"
#include <atomic>
#include <cstring>

using namespace fg;
using namespace fg::validate;

bool validate::parseMode(std::string_view Text, Mode &Out) {
  if (Text == "off")
    Out = Mode::Off;
  else if (Text == "translate")
    Out = Mode::Translate;
  else if (Text == "passes")
    Out = Mode::Passes;
  else
    return false;
  return true;
}

const char *validate::modeName(Mode M) {
  switch (M) {
  case Mode::Off:
    return "off";
  case Mode::Translate:
    return "translate";
  case Mode::Passes:
    return "passes";
  }
  return "off";
}

namespace {

/// Walks an ill-typed term towards the smallest subterm where typing
/// actually breaks.  Carries the term environment (extended at
/// binders) and the type parameters opened by enclosing type
/// abstractions; subterms under open parameters are checked re-wrapped
/// in a synthetic TyAbs so the standalone checker has them in scope.
struct IllTypedSearch {
  sf::TypeContext &Ctx;
  sf::TermArena &Scratch;
  sf::TypeEnv Env;
  std::vector<sf::TypeParamDecl> Open;

  const sf::Type *typeOf(const sf::Term *T) {
    sf::TypeChecker Checker(Ctx);
    const sf::Term *Wrapped =
        Open.empty() ? T : Scratch.makeTyAbs(Open, T);
    const sf::Type *Ty = Checker.check(Wrapped, Env);
    if (!Ty || Open.empty())
      return Ty;
    return cast<sf::ForAllType>(Ty)->getBody();
  }

  /// Precondition: \p T does not typecheck under Env/Open.  Returns
  /// the smallest ill-typed descendant (possibly \p T itself).
  const sf::Term *descend(const sf::Term *T) {
    if (const sf::Term *Inner = findInChildren(T))
      return Inner;
    return T;
  }

  /// Checks \p Child; when it is itself ill-typed, descends into it.
  const sf::Term *visit(const sf::Term *Child) {
    if (typeOf(Child))
      return nullptr;
    return descend(Child);
  }

  const sf::Term *findInChildren(const sf::Term *T) {
    switch (T->getKind()) {
    case sf::TermKind::IntLit:
    case sf::TermKind::BoolLit:
    case sf::TermKind::Var:
      return nullptr;

    case sf::TermKind::Abs: {
      const auto *A = cast<sf::AbsTerm>(T);
      size_t Saved = Env.size();
      for (const sf::ParamBinding &P : A->getParams())
        Env.bind(P.Name, P.Ty);
      const sf::Term *R = visit(A->getBody());
      Env.truncate(Saved);
      return R;
    }

    case sf::TermKind::App: {
      const auto *A = cast<sf::AppTerm>(T);
      if (const sf::Term *R = visit(A->getFn()))
        return R;
      for (const sf::Term *Arg : A->getArgs())
        if (const sf::Term *R = visit(Arg))
          return R;
      return nullptr;
    }

    case sf::TermKind::TyAbs: {
      const auto *A = cast<sf::TyAbsTerm>(T);
      size_t Saved = Open.size();
      Open.insert(Open.end(), A->getParams().begin(), A->getParams().end());
      const sf::Term *R = visit(A->getBody());
      Open.resize(Saved);
      return R;
    }

    case sf::TermKind::TyApp:
      return visit(cast<sf::TyAppTerm>(T)->getFn());

    case sf::TermKind::Let: {
      const auto *L = cast<sf::LetTerm>(T);
      if (const sf::Term *R = visit(L->getInit()))
        return R;
      const sf::Type *InitTy = typeOf(L->getInit());
      if (!InitTy)
        return nullptr; // init is the problem but has no smaller culprit
      size_t Saved = Env.size();
      Env.bind(L->getName(), InitTy);
      const sf::Term *R = visit(L->getBody());
      Env.truncate(Saved);
      return R;
    }

    case sf::TermKind::Tuple: {
      for (const sf::Term *E : cast<sf::TupleTerm>(T)->getElements())
        if (const sf::Term *R = visit(E))
          return R;
      return nullptr;
    }

    case sf::TermKind::Nth:
      return visit(cast<sf::NthTerm>(T)->getTuple());

    case sf::TermKind::If: {
      const auto *I = cast<sf::IfTerm>(T);
      if (const sf::Term *R = visit(I->getCond()))
        return R;
      if (const sf::Term *R = visit(I->getThen()))
        return R;
      return visit(I->getElse());
    }

    case sf::TermKind::Fix:
      return visit(cast<sf::FixTerm>(T)->getOperand());
    }
    return nullptr;
  }
};

} // namespace

const sf::Term *Validator::findSmallestIllTyped(const sf::Term *T) {
  IllTypedSearch Search{Ctx, Scratch, BaseEnv, {}};
  if (Search.typeOf(T))
    return nullptr;
  return Search.descend(T);
}

bool Validator::checkTranslation(const sf::Term *T,
                                 const sf::Type *Expected) {
  static std::atomic<uint64_t> &Checks =
      stats::Statistics::global().counter("validate.translate.checks");
  static std::atomic<uint64_t> &Failures =
      stats::Statistics::global().counter("validate.translate.failures");
  stats::ScopedTimer Timer("validate.translate");
  ++Checks;

  sf::TypeChecker Checker(Ctx);
  const sf::Type *Ty = Checker.check(T, BaseEnv);
  if (!Ty) {
    ++Failures;
    const sf::Term *Culprit = findSmallestIllTyped(T);
    Error = "internal error: translation is not well typed in System F: " +
            Checker.firstError() + "; smallest ill-typed subterm: `" +
            sf::termToString(Culprit ? Culprit : T) + "`";
    return false;
  }
  if (Expected && Ty != Expected) {
    ++Failures;
    Error = "internal error: translation violates Theorem 2: the translated "
            "term has type `" +
            sf::typeToString(Ty) + "` but the program's F_G type translates "
            "to `" +
            sf::typeToString(Expected) + "`";
    return false;
  }
  return true;
}

bool Validator::checkPass(const char *PassName, const sf::Term *After,
                          const sf::Type *Expected) {
  static std::atomic<uint64_t> &Checks =
      stats::Statistics::global().counter("validate.pass.checks");
  static std::atomic<uint64_t> &Failures =
      stats::Statistics::global().counter("validate.pass.failures");
  stats::ScopedTimer Timer("validate.passes");
  ++Checks;

  sf::TypeChecker Checker(Ctx);
  const sf::Type *Ty = Checker.check(After, BaseEnv);
  if (Ty && (!Expected || Ty == Expected))
    return true;

  ++Failures;
  FailedPass = PassName;
  if (!Ty) {
    const sf::Term *Culprit = findSmallestIllTyped(After);
    Error = "internal error: optimizer pass `" + FailedPass +
            "` produced an ill-typed term: " + Checker.firstError() +
            "; smallest ill-typed subterm: `" +
            sf::termToString(Culprit ? Culprit : After) + "`";
  } else {
    Error = "internal error: optimizer pass `" + FailedPass +
            "` changed the program's type from `" +
            sf::typeToString(Expected) + "` to `" + sf::typeToString(Ty) +
            "`";
  }
  return false;
}

std::function<bool(const char *, const sf::Term *, const sf::Term *)>
Validator::passHook(const sf::Type *Expected) {
  return [this, Expected](const char *PassName, const sf::Term *,
                          const sf::Term *After) {
    return checkPass(PassName, After, Expected);
  };
}
