//===- validate/Fuzz.h - Well-typed F_G program fuzzer ----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of well-typed-by-construction F_G programs —
/// concepts, models, refinement, associated types, same-type
/// constraints, generic functions, fixpoints — and a runner that
/// drives the whole validation surface with them: Theorems 1 and 2
/// after Translate, per-pass re-typechecking through Optimize, and
/// the cross-backend differential contract (tree / closure / vm must
/// agree, and both must agree with the direct F_G interpreter).
///
/// Exposed by the driver as `fgc --fuzz N --seed S`.  Determinism is
/// part of the contract: (Seed, Index) fully determines a program, so
/// a failure report names a reproducible input.
///
//===----------------------------------------------------------------------===//

#ifndef FG_VALIDATE_FUZZ_H
#define FG_VALIDATE_FUZZ_H

#include "aot/Toolchain.h"
#include "systemf/Specialize.h"
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fg {
namespace validate {

/// Controls one fuzzing run.
struct FuzzOptions {
  unsigned Count = 100;        ///< Number of programs to generate.
  uint64_t Seed = 42;          ///< Base seed; program i uses (Seed, i).
  bool ValidatePasses = true;  ///< Re-typecheck every optimizer pass.
  /// Specialization level the optimizer runs at while fuzzing; the
  /// `optimized` backend then cross-checks specialized evaluation
  /// against every other backend.
  sf::SpecializeLevel Specialize = sf::SpecializeLevel::Off;
  /// Also run every program through the AOT backend (aot/Aot.h) and
  /// hold it to the same identical-outcome contract.  Opt-in (driver
  /// `--fuzz N --backend=aot`): each program costs a host-compiler
  /// invocation, amortized by the AOT build cache.
  bool IncludeAot = false;
  aot::ToolchainOptions AotToolchain; ///< Toolchain for IncludeAot.
  std::ostream *Log = nullptr; ///< Failure/progress log (may be null).
};

/// One failing program, for reporting and fixture promotion.
struct FuzzFailure {
  unsigned Index = 0;
  std::string Source;
  std::string Message;
};

/// Outcome of a fuzzing run.
struct FuzzResult {
  unsigned Generated = 0;
  std::vector<FuzzFailure> Failures;
  bool ok() const { return Failures.empty(); }
};

/// Deterministically generates the \p Index-th program for \p Seed.
/// Every generated program is well typed by construction and total
/// (no runtime errors), so compilation, validation and all backends
/// must succeed and agree.
std::string generateProgram(uint64_t Seed, unsigned Index);

/// Generates and checks \p Opts.Count programs: compile with
/// translation verification, optimize with per-pass validation (when
/// ValidatePasses), then run tree/closure/vm plus the direct F_G
/// interpreter and require identical outcomes.
FuzzResult runFuzz(const FuzzOptions &Opts);

} // namespace validate
} // namespace fg

#endif // FG_VALIDATE_FUZZ_H
