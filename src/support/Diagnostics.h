//===- support/Diagnostics.h - Diagnostic reporting -------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting for the front end.  Library code never throws; it
/// reports into a DiagnosticEngine and returns a null/failed value.
/// Message style follows the LLVM guideline: lowercase first word, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SUPPORT_DIAGNOSTICS_H
#define FG_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"
#include <string>
#include <vector>

namespace fg {

class SourceManager;

/// Severity of a diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic: severity, location, and rendered message.
/// EndLoc, when valid, makes [Loc, EndLoc) a source range; render()
/// underlines the whole span (across lines when needed) instead of
/// printing a single caret.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  SourceLocation EndLoc;
  std::string Message;
};

/// Collects diagnostics produced by the lexer, parser and typechecker.
///
/// The engine owns no source text; it optionally holds a SourceManager
/// pointer so that render() can include file/line/column prefixes and
/// source snippets.
class DiagnosticEngine {
public:
  DiagnosticEngine() = default;
  explicit DiagnosticEngine(const SourceManager *SM) : SM(SM) {}

  void setSourceManager(const SourceManager *M) { SM = M; }

  /// Reports an error at \p Loc.
  void error(SourceLocation Loc, std::string Message);

  /// Reports an error spanning \p Range.
  void error(SourceRange Range, std::string Message);

  /// Reports a warning at \p Loc.
  void warning(SourceLocation Loc, std::string Message);

  /// Reports a warning spanning \p Range.
  void warning(SourceRange Range, std::string Message);

  /// Attaches an explanatory note to the previous diagnostic.
  void note(SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }

  /// Number of diagnostics recorded so far; pair with truncate() to
  /// drop the output of a speculative check that turned out not to
  /// matter.
  size_t size() const { return Diags.size(); }

  /// Drops every diagnostic recorded after a size() snapshot.
  void truncate(size_t N);

  /// Forgets all recorded diagnostics (used by tests and the REPL).
  void clear();

  /// Renders all diagnostics into a human-readable string, one per line,
  /// in "file:line:col: severity: message" form when locations resolve.
  std::string render() const;

  /// Renders just the first error message, or an empty string.
  std::string firstError() const;

private:
  const SourceManager *SM = nullptr;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace fg

#endif // FG_SUPPORT_DIAGNOSTICS_H
