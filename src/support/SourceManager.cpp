//===- support/SourceManager.cpp - Source buffer registry ----------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"
#include <algorithm>
#include <cassert>

using namespace fg;

uint32_t SourceManager::addBuffer(std::string Name, std::string Text) {
  Buffer B;
  B.Name = std::move(Name);
  B.Text = std::move(Text);
  B.LineStarts.push_back(0);
  for (size_t I = 0, E = B.Text.size(); I != E; ++I)
    if (B.Text[I] == '\n')
      B.LineStarts.push_back(I + 1);
  Buffers.push_back(std::move(B));
  return static_cast<uint32_t>(Buffers.size());
}

const SourceManager::Buffer &SourceManager::getBuffer(uint32_t BufferId) const {
  assert(BufferId >= 1 && BufferId <= Buffers.size() && "invalid buffer id");
  return Buffers[BufferId - 1];
}

std::string_view SourceManager::getBufferText(uint32_t BufferId) const {
  return getBuffer(BufferId).Text;
}

std::string_view SourceManager::getBufferName(uint32_t BufferId) const {
  return getBuffer(BufferId).Name;
}

SourceLocation SourceManager::getLocation(uint32_t BufferId,
                                          size_t Offset) const {
  const Buffer &B = getBuffer(BufferId);
  assert(Offset <= B.Text.size() && "offset past end of buffer");
  // End-of-file positions in a buffer with trailing newlines would
  // land on the phantom line after the last one — a line with no text
  // to show in a snippet.  Clamp them back to just past the last real
  // character, so EOF diagnostics point at the end of the final
  // non-empty line.
  if (Offset == B.Text.size())
    while (Offset > 0 && B.Text[Offset - 1] == '\n')
      --Offset;
  // Find the last line start <= Offset.
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(), Offset);
  size_t LineIdx = static_cast<size_t>(It - B.LineStarts.begin()) - 1;
  SourceLocation Loc;
  Loc.BufferId = BufferId;
  Loc.Line = static_cast<uint32_t>(LineIdx + 1);
  Loc.Column = static_cast<uint32_t>(Offset - B.LineStarts[LineIdx] + 1);
  return Loc;
}

std::string_view SourceManager::getLineText(uint32_t BufferId,
                                            uint32_t Line) const {
  const Buffer &B = getBuffer(BufferId);
  if (Line == 0 || Line > B.LineStarts.size())
    return {};
  size_t Begin = B.LineStarts[Line - 1];
  size_t End = Line < B.LineStarts.size() ? B.LineStarts[Line] : B.Text.size();
  while (End > Begin && (B.Text[End - 1] == '\n' || B.Text[End - 1] == '\r'))
    --End;
  return std::string_view(B.Text).substr(Begin, End - Begin);
}
