//===- support/SourceLocation.h - Source positions --------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain value types describing positions and ranges in source buffers.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SUPPORT_SOURCELOCATION_H
#define FG_SUPPORT_SOURCELOCATION_H

#include <cstdint>

namespace fg {

/// A position in a source buffer: 1-based line and column plus the id of
/// the buffer it came from.  An invalid location has Line == 0.
struct SourceLocation {
  uint32_t BufferId = 0;
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.BufferId == B.BufferId && A.Line == B.Line && A.Column == B.Column;
  }
};

/// A half-open range of source text [Begin, End).
struct SourceRange {
  SourceLocation Begin;
  SourceLocation End;

  SourceRange() = default;
  SourceRange(SourceLocation B, SourceLocation E) : Begin(B), End(E) {}
  explicit SourceRange(SourceLocation L) : Begin(L), End(L) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace fg

#endif // FG_SUPPORT_SOURCELOCATION_H
