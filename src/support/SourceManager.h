//===- support/SourceManager.h - Source buffer registry ---------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns source buffers and maps byte offsets to line/column locations.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SUPPORT_SOURCEMANAGER_H
#define FG_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLocation.h"
#include <string>
#include <string_view>
#include <vector>

namespace fg {

/// Registry of in-memory source buffers.  Buffer ids are 1-based so that
/// a zero BufferId in SourceLocation means "no buffer".
class SourceManager {
public:
  /// Registers \p Text under \p Name and returns its buffer id.
  uint32_t addBuffer(std::string Name, std::string Text);

  /// Returns the text of buffer \p BufferId.
  std::string_view getBufferText(uint32_t BufferId) const;

  /// Returns the name under which buffer \p BufferId was registered.
  std::string_view getBufferName(uint32_t BufferId) const;

  /// Translates a byte offset within a buffer to a line/column location.
  SourceLocation getLocation(uint32_t BufferId, size_t Offset) const;

  /// Returns the full text of line \p Line (1-based) of a buffer, without
  /// the trailing newline.  Used for diagnostic snippets.
  std::string_view getLineText(uint32_t BufferId, uint32_t Line) const;

  unsigned getNumBuffers() const { return Buffers.size(); }

private:
  struct Buffer {
    std::string Name;
    std::string Text;
    /// Byte offset of the start of each line; LineStarts[0] == 0.
    std::vector<size_t> LineStarts;
  };

  const Buffer &getBuffer(uint32_t BufferId) const;

  std::vector<Buffer> Buffers;
};

} // namespace fg

#endif // FG_SUPPORT_SOURCEMANAGER_H
