//===- support/Stats.h - Compiler statistics and tracing --------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight observability layer for the whole pipeline: named
/// counters, named phase timers, and an RAII scoped timer, with both
/// human-readable and JSON emission.
///
/// Design constraints, in order:
///
///  1. Hot paths must pay (almost) nothing.  Counters are
///     `std::atomic<uint64_t>` cells registered once; the idiomatic
///     call site is
///
///         static std::atomic<uint64_t> &C =
///             stats::Statistics::global().counter("checker.model_lookups");
///         ++C;
///
///     so the steady-state cost is one atomic increment — no map
///     lookup, no branch on an enable flag.  Cell addresses are stable
///     for the life of the process (`std::map` nodes never move), and
///     reset() zeroes values without invalidating them.  Atomic cells
///     are what lets the batch driver check modules on a thread pool
///     while every worker counts into the same registry.
///
///  2. Timers call the clock, which is not free, so they *are* gated:
///     a ScopedTimer constructed while the registry is disabled does
///     nothing.  Phase-level granularity (lex, parse, check, verify,
///     optimize, eval) keeps the clock off the per-node paths.
///
///  3. Emission is deterministic: counters and timers print in name
///     order, so two runs of the same workload diff cleanly and the
///     per-PR `BENCH_*.json` trajectories are comparable.
///
/// Derived ratios are computed at emission time: for every counter pair
/// `<prefix>.hits` / `<prefix>.misses` the reports include
/// `<prefix>.hit_rate`.  That is how `--stats` reports the model-cache
/// hit rate without the checker having to do division on the hot path.
///
/// The registry is process-wide, so long-lived processes report too:
/// the `fgcd` daemon counts requests, sessions, protocol errors, and
/// artifact-cache traffic under `server.*` (the `stats` protocol
/// request and `fgcd --stats` both read this registry), with
/// `server.artifact_cache.{hits,misses}` getting the same derived
/// hit_rate treatment as the checker caches.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SUPPORT_STATS_H
#define FG_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace fg {
namespace stats {

/// Monotonic clock reading in nanoseconds.
uint64_t nowNanos();

/// The process-wide statistics registry.
///
/// Counters are always live (incrementing a uint64_t is cheaper than
/// checking whether to).  The enabled flag gates timers and is the
/// driver's signal that a report was requested at all.
///
/// Thread-safe: a compilation is single-threaded per Frontend, but the
/// batch driver runs many Frontends concurrently, all counting into
/// this one registry.  Registration and timer recording take a mutex
/// (cold paths); increments on registered cells are lock-free atomics.
class Statistics {
public:
  /// The singleton registry.
  static Statistics &global();

  void enable(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool isEnabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Returns the cell for \p Name, creating it at zero on first use.
  /// The reference stays valid (and keeps counting) forever.
  std::atomic<uint64_t> &counter(const std::string &Name);

  /// Convenience increment for cold call sites.
  void add(const std::string &Name, uint64_t Delta = 1) {
    counter(Name) += Delta;
  }

  /// Accumulated wall-clock per named phase.
  struct TimerRecord {
    uint64_t Nanos = 0;
    uint64_t Calls = 0;
  };

  /// Adds one timed interval to phase \p Name.
  void addTime(const std::string &Name, uint64_t Nanos);

  /// Zeroes every counter and timer; registered cells stay valid.
  void reset();

  /// Point-in-time copies, for tests and custom reporting.
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, TimerRecord> timers() const;

  /// Human-readable report (aligned columns, ratios, microseconds).
  void print(std::ostream &OS) const;

  /// Machine-readable report:
  ///   {"counters": {...}, "timers": {"p": {"nanos": n, "calls": c}},
  ///    "derived": {"x.hit_rate": 0.93}}
  void printJson(std::ostream &OS) const;

private:
  Statistics() = default;

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu; ///< Guards the maps, not the counter cells.
  std::map<std::string, std::atomic<uint64_t>> Counters;
  std::map<std::string, TimerRecord> Timers;
};

/// Times one scope into a named phase.  Free when the registry is
/// disabled at construction.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Name)
      : Name(Name), Start(Statistics::global().isEnabled() ? nowNanos() : 0) {}

  ~ScopedTimer() {
    if (Start)
      Statistics::global().addTime(Name, nowNanos() - Start);
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  const char *Name;
  uint64_t Start;
};

} // namespace stats
} // namespace fg

#endif // FG_SUPPORT_STATS_H
