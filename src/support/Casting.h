//===- support/Casting.h - Kind-based RTTI helpers --------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight isa/cast/dyn_cast in the style of LLVM's Support/Casting.h.
/// A class opts in by providing a `static bool classof(const Base *)`
/// predicate, typically implemented with a kind enumerator.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SUPPORT_CASTING_H
#define FG_SUPPORT_CASTING_H

#include <cassert>

namespace fg {

/// Returns true if \p Val is an instance of type \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Casts \p Val to type \p To, asserting that the cast is valid.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Casts \p Val to type \p To (mutable overload).
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Casts \p Val to type \p To, or returns null if \p Val is not a \p To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Mutable overload of dyn_cast.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// dyn_cast that tolerates a null input.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace fg

#endif // FG_SUPPORT_CASTING_H
