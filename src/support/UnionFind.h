//===- support/UnionFind.h - Union/find with rollback -----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disjoint-set forest used by the congruence closure that decides type
/// equality in F_G (paper section 5.1, citing MacQueen's union/find-based
/// type sharing implementation for Standard ML and Nelson-Oppen congruence
/// closure).
///
/// Same-type constraints are lexically scoped in F_G: entering a type
/// abstraction adds equalities that must disappear when checking leaves
/// its body.  The structure therefore supports rollback to a mark.  To
/// keep rollback exact we use union by rank without path compression;
/// find() is O(log n), which matches the paper's O(n log n) bound for the
/// overall decision procedure.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SUPPORT_UNIONFIND_H
#define FG_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fg {

/// Disjoint-set forest over dense unsigned ids with undo support.
class UnionFind {
public:
  /// Creates a fresh singleton set and returns its id.
  unsigned makeNode() {
    Parent.push_back(static_cast<unsigned>(Parent.size()));
    Rank.push_back(0);
    return static_cast<unsigned>(Parent.size() - 1);
  }

  unsigned size() const { return static_cast<unsigned>(Parent.size()); }

  /// Returns the representative of the set containing \p Id.
  unsigned find(unsigned Id) const {
    assert(Id < Parent.size() && "find() id out of range");
    while (Parent[Id] != Id)
      Id = Parent[Id];
    return Id;
  }

  /// Returns true if \p A and \p B are in the same set.
  bool same(unsigned A, unsigned B) const { return find(A) == find(B); }

  /// Merges the sets of \p A and \p B.  Returns true if they were
  /// previously distinct.
  bool unite(unsigned A, unsigned B) {
    unsigned RA = find(A), RB = find(B);
    if (RA == RB)
      return false;
    // Attach the lower-rank root beneath the higher-rank one.
    if (Rank[RA] < Rank[RB])
      std::swap(RA, RB);
    Trail.push_back({RB, Rank[RA]});
    Parent[RB] = RA;
    if (Rank[RA] == Rank[RB])
      ++Rank[RA];
    return true;
  }

  /// Links \p LoserRoot beneath \p WinnerRoot, overriding the rank
  /// heuristic.  The congruence closure uses this to control which class
  /// root survives a merge (the one whose parent-occurrence list is
  /// larger, in the style of Nelson-Oppen).  Both arguments must be
  /// roots and distinct.
  void uniteDirected(unsigned WinnerRoot, unsigned LoserRoot) {
    assert(find(WinnerRoot) == WinnerRoot && "winner must be a root");
    assert(find(LoserRoot) == LoserRoot && "loser must be a root");
    assert(WinnerRoot != LoserRoot && "cannot unite a root with itself");
    Trail.push_back({LoserRoot, Rank[WinnerRoot]});
    Parent[LoserRoot] = WinnerRoot;
    if (Rank[WinnerRoot] <= Rank[LoserRoot])
      Rank[WinnerRoot] = Rank[LoserRoot] + 1;
  }

  /// Opaque undo position; pass to rollback().
  struct Mark {
    size_t TrailSize;
    size_t NumNodes;
  };

  Mark mark() const { return {Trail.size(), Parent.size()}; }

  /// Undoes every unite() and makeNode() performed since \p M was taken.
  void rollback(Mark M) {
    assert(M.TrailSize <= Trail.size() && "rollback mark from the future");
    while (Trail.size() > M.TrailSize) {
      const Undo &U = Trail.back();
      unsigned Root = Parent[U.Child];
      Parent[U.Child] = U.Child;
      Rank[Root] = U.OldRootRank;
      Trail.pop_back();
    }
    assert(M.NumNodes <= Parent.size() && "rollback mark from the future");
    Parent.resize(M.NumNodes);
    Rank.resize(M.NumNodes);
  }

private:
  struct Undo {
    unsigned Child;       ///< Root that was linked under another root.
    uint32_t OldRootRank; ///< Rank of the surviving root before the link.
  };

  std::vector<unsigned> Parent;
  std::vector<uint32_t> Rank;
  std::vector<Undo> Trail;
};

} // namespace fg

#endif // FG_SUPPORT_UNIONFIND_H
