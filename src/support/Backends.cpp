//===- support/Backends.cpp - Execution backend registry ------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "support/Backends.h"

#include <algorithm>

namespace fg {

const std::vector<BackendInfo> &backendRegistry() {
  static const std::vector<BackendInfo> Registry = {
      {"tree", "reference tree-walking evaluator (default)"},
      {"closure", "closure-compiling evaluator"},
      {"vm", "bytecode virtual machine"},
      {"aot", "ahead-of-time C++ transpiler (host toolchain required)"},
  };
  return Registry;
}

bool isBackendName(const std::string &Name) {
  for (const BackendInfo &B : backendRegistry())
    if (Name == B.Name)
      return true;
  return false;
}

std::string backendNameList() {
  std::string Out;
  for (const BackendInfo &B : backendRegistry()) {
    if (!Out.empty())
      Out += ", ";
    Out += B.Name;
  }
  return Out;
}

std::string backendHelpTable(const std::string &Indent) {
  size_t Width = 0;
  for (const BackendInfo &B : backendRegistry())
    Width = std::max(Width, std::string(B.Name).size());
  std::string Out;
  for (const BackendInfo &B : backendRegistry()) {
    std::string Name = B.Name;
    Out += Indent + Name + std::string(Width - Name.size() + 2, ' ') +
           B.Description + "\n";
  }
  return Out;
}

} // namespace fg
