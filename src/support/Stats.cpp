//===- support/Stats.cpp - Compiler statistics and tracing ----------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include <chrono>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

using namespace fg;
using namespace fg::stats;

uint64_t fg::stats::nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Statistics &Statistics::global() {
  static Statistics S;
  return S;
}

std::atomic<uint64_t> &Statistics::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters[Name]; // value-initialized to 0 on first use
}

void Statistics::addTime(const std::string &Name, uint64_t Nanos) {
  std::lock_guard<std::mutex> Lock(Mu);
  TimerRecord &R = Timers[Name];
  R.Nanos += Nanos;
  R.Calls += 1;
}

void Statistics::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, Value] : Counters)
    Value.store(0, std::memory_order_relaxed);
  for (auto &[Name, R] : Timers)
    R = {};
}

std::map<std::string, uint64_t> Statistics::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, Value] : Counters)
    Out.emplace(Name, Value.load(std::memory_order_relaxed));
  return Out;
}

std::map<std::string, Statistics::TimerRecord> Statistics::timers() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Timers;
}

namespace {

/// The `<prefix>.hits` / `<prefix>.misses` pairs present in \p Counters,
/// as (prefix, rate) with rate = hits / (hits + misses).  Pairs that
/// were never exercised (0 + 0) are skipped.
std::vector<std::pair<std::string, double>>
hitRates(const std::map<std::string, uint64_t> &Counters) {
  std::vector<std::pair<std::string, double>> Rates;
  for (const auto &[Name, Hits] : Counters) {
    const std::string Suffix = ".hits";
    if (Name.size() <= Suffix.size() ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    std::string Prefix = Name.substr(0, Name.size() - Suffix.size());
    auto MissIt = Counters.find(Prefix + ".misses");
    if (MissIt == Counters.end())
      continue;
    uint64_t Total = Hits + MissIt->second;
    if (Total == 0)
      continue;
    Rates.emplace_back(Prefix + ".hit_rate",
                       static_cast<double>(Hits) / Total);
  }
  return Rates;
}

std::string formatNanos(uint64_t Nanos) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(3);
  if (Nanos >= 1'000'000'000)
    OS << Nanos / 1e9 << " s";
  else if (Nanos >= 1'000'000)
    OS << Nanos / 1e6 << " ms";
  else
    OS << Nanos / 1e3 << " us";
  return OS.str();
}

} // namespace

void Statistics::print(std::ostream &OS) const {
  const std::map<std::string, uint64_t> Counters = counters();
  const std::map<std::string, TimerRecord> Timers = timers();
  OS << "=== fgc statistics ===\n";
  size_t Width = 0;
  for (const auto &[Name, Value] : Counters)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, R] : Timers)
    Width = std::max(Width, Name.size());

  if (!Counters.empty()) {
    OS << "counters:\n";
    for (const auto &[Name, Value] : Counters)
      OS << "  " << std::left << std::setw(static_cast<int>(Width)) << Name
         << "  " << Value << "\n";
  }
  if (!Timers.empty()) {
    OS << "timers:\n";
    for (const auto &[Name, R] : Timers)
      OS << "  " << std::left << std::setw(static_cast<int>(Width)) << Name
         << "  " << formatNanos(R.Nanos) << "  (" << R.Calls << " calls)\n";
  }
  auto Rates = hitRates(Counters);
  if (!Rates.empty()) {
    OS << "derived:\n";
    for (const auto &[Name, Rate] : Rates)
      OS << "  " << std::left << std::setw(static_cast<int>(Width)) << Name
         << "  " << std::fixed << std::setprecision(1) << Rate * 100.0
         << "%\n";
  }
}

void Statistics::printJson(std::ostream &OS) const {
  const std::map<std::string, uint64_t> Counters = counters();
  const std::map<std::string, TimerRecord> Timers = timers();
  // Names are dotted identifiers (no quotes/backslashes/control
  // characters), so plain quoting is valid JSON.
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    OS << (First ? "" : ",") << "\n    \"" << Name << "\": " << Value;
    First = false;
  }
  OS << (First ? "" : "\n  ") << "},\n  \"timers\": {";
  First = true;
  for (const auto &[Name, R] : Timers) {
    OS << (First ? "" : ",") << "\n    \"" << Name << "\": {\"nanos\": "
       << R.Nanos << ", \"calls\": " << R.Calls << "}";
    First = false;
  }
  OS << (First ? "" : "\n  ") << "},\n  \"derived\": {";
  First = true;
  for (const auto &[Name, Rate] : hitRates(Counters)) {
    OS << (First ? "" : ",") << "\n    \"" << Name << "\": " << std::fixed
       << std::setprecision(6) << Rate;
    First = false;
  }
  OS << (First ? "" : "\n  ") << "}\n}\n";
}
