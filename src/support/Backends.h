//===- support/Backends.h - Execution backend registry ----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single registry of System F execution backends.  Everything that
/// names backends — `fgc --backend=`, the `fgcd` help text, the wire
/// protocol's `backend` parameter, and the error messages all three
/// print — derives from this table, so adding an engine means adding
/// one row here (plus the engine itself); DriverCliTest fails if a
/// registered backend is missing from either binary's `--help`.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SUPPORT_BACKENDS_H
#define FG_SUPPORT_BACKENDS_H

#include <string>
#include <vector>

namespace fg {

/// One execution backend, as the user-facing surfaces see it.
struct BackendInfo {
  const char *Name;        ///< The `--backend=` / protocol value.
  const char *Description; ///< One line for the generated help table.
};

/// Every registered backend, in presentation order (the default first).
const std::vector<BackendInfo> &backendRegistry();

/// True when \p Name names a registered backend.
bool isBackendName(const std::string &Name);

/// `tree, closure, vm, aot` — for error messages.
std::string backendNameList();

/// The generated `--backend=` help table: one aligned
/// `<indent><name>  <description>` line per backend.
std::string backendHelpTable(const std::string &Indent);

} // namespace fg

#endif // FG_SUPPORT_BACKENDS_H
