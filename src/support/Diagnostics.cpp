//===- support/Diagnostics.cpp - Diagnostic reporting --------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include <sstream>

using namespace fg;

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid() && SM) {
      OS << SM->getBufferName(D.Loc.BufferId) << ':' << D.Loc.Line << ':'
         << D.Loc.Column << ": ";
    } else if (D.Loc.isValid()) {
      OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
    }
    OS << severityName(D.Severity) << ": " << D.Message << '\n';
    if (D.Loc.isValid() && SM) {
      std::string_view Line = SM->getLineText(D.Loc.BufferId, D.Loc.Line);
      if (!Line.empty()) {
        OS << "  " << Line << '\n';
        OS << "  " << std::string(D.Loc.Column ? D.Loc.Column - 1 : 0, ' ')
           << "^\n";
      }
    }
  }
  return OS.str();
}

std::string DiagnosticEngine::firstError() const {
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      return D.Message;
  return {};
}
