//===- support/Diagnostics.cpp - Diagnostic reporting --------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include <algorithm>
#include <sstream>

using namespace fg;

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, {}, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::error(SourceRange Range, std::string Message) {
  Diags.push_back(
      {DiagSeverity::Error, Range.Begin, Range.End, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, {}, std::move(Message)});
}

void DiagnosticEngine::warning(SourceRange Range, std::string Message) {
  Diags.push_back(
      {DiagSeverity::Warning, Range.Begin, Range.End, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, {}, std::move(Message)});
}

void DiagnosticEngine::truncate(size_t N) {
  if (N >= Diags.size())
    return;
  for (size_t I = N; I != Diags.size(); ++I)
    if (Diags[I].Severity == DiagSeverity::Error)
      --NumErrors;
  Diags.resize(N);
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

/// Prints one source line and its underline.  \p From and \p To are
/// 1-based columns, half-open [From, To); the underline's first
/// character is \p Lead (`^` on the line the diagnostic points at,
/// `~` on continuation lines).
static void renderUnderlinedLine(std::ostringstream &OS,
                                 std::string_view Line, uint32_t From,
                                 uint32_t To, char Lead) {
  OS << "  " << Line << '\n';
  // Allow the underline to extend one column past the text so spans
  // ending at end-of-line (and EOF carets) stay visible.
  uint32_t Limit = static_cast<uint32_t>(Line.size()) + 2;
  From = std::min(From, Limit - 1);
  To = std::min(std::max(To, From + 1), Limit);
  OS << "  " << std::string(From - 1, ' ') << Lead
     << std::string(To - From - 1, '~') << '\n';
}

/// Renders the source snippet for \p D: a caret for point
/// diagnostics, an underline for single-line spans, and per-line
/// underlines (long interiors elided) for multi-line spans.
static void renderSnippet(std::ostringstream &OS, const SourceManager &SM,
                          const Diagnostic &D) {
  std::string_view First = SM.getLineText(D.Loc.BufferId, D.Loc.Line);
  bool Spans = D.EndLoc.isValid() && D.EndLoc.BufferId == D.Loc.BufferId;
  if (!Spans || D.EndLoc.Line == D.Loc.Line) {
    if (First.empty())
      return;
    uint32_t From = std::max<uint32_t>(D.Loc.Column, 1);
    uint32_t To = Spans ? D.EndLoc.Column : From + 1;
    renderUnderlinedLine(OS, First, From, To, '^');
    return;
  }
  // Multi-line span: underline from the start column to each line's
  // end, eliding interiors longer than four lines.
  renderUnderlinedLine(OS, First, std::max<uint32_t>(D.Loc.Column, 1),
                       static_cast<uint32_t>(First.size()) + 1, '^');
  uint32_t Interior = D.EndLoc.Line - D.Loc.Line - 1;
  bool Elide = Interior > 4;
  for (uint32_t L = D.Loc.Line + 1; L < D.EndLoc.Line; ++L) {
    if (Elide && L == D.Loc.Line + 3) {
      OS << "  ...\n";
      L = D.EndLoc.Line - 2;
      continue;
    }
    std::string_view Line = SM.getLineText(D.Loc.BufferId, L);
    renderUnderlinedLine(OS, Line, 1,
                         static_cast<uint32_t>(Line.size()) + 1, '~');
  }
  if (D.EndLoc.Column > 1) {
    std::string_view Last = SM.getLineText(D.Loc.BufferId, D.EndLoc.Line);
    renderUnderlinedLine(OS, Last, 1, D.EndLoc.Column, '~');
  }
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid() && SM) {
      OS << SM->getBufferName(D.Loc.BufferId) << ':' << D.Loc.Line << ':'
         << D.Loc.Column << ": ";
    } else if (D.Loc.isValid()) {
      OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
    }
    OS << severityName(D.Severity) << ": " << D.Message << '\n';
    if (D.Loc.isValid() && SM)
      renderSnippet(OS, *SM, D);
  }
  return OS.str();
}

std::string DiagnosticEngine::firstError() const {
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      return D.Message;
  return {};
}
