//===- systemf/Compile.h - Closure-compiling evaluator ----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faster execution engine for translated programs: instead of
/// walking the term at every step, each term is *compiled once* into a
/// tree of C++ closures with variables resolved to (frame, slot)
/// coordinates at compile time.  This removes name lookup and kind
/// dispatch from the hot path — the standard "closure compilation"
/// technique for functional-language interpreters.
///
/// The engine is observationally equivalent to systemf/Eval.h (the
/// tree-walking evaluator); the test suite runs both on the same
/// programs and compares.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_COMPILE_H
#define FG_SYSTEMF_COMPILE_H

#include "systemf/Builtins.h"
#include "systemf/Eval.h"
#include "systemf/Term.h"
#include <memory>

namespace fg {
namespace sf {

/// A term compiled against a prelude.  Compile once, run many times.
class CompiledTerm {
public:
  /// Compiles \p T.  Free variables must be bound by \p P.  Returns
  /// null (with \p ErrorOut set) if an unbound variable is found.
  static std::unique_ptr<CompiledTerm>
  compile(const Term *T, const Prelude &P, std::string *ErrorOut = nullptr);

  /// Executes the compiled program.
  EvalResult run(const EvalOptions &Opts = EvalOptions()) const;

  ~CompiledTerm();
  CompiledTerm(CompiledTerm &&) noexcept;

private:
  CompiledTerm();
  struct Impl;
  std::unique_ptr<Impl> P;
};

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_COMPILE_H
