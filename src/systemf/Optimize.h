//===- systemf/Optimize.h - Dictionary specialization -----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program specializer for translated F_G programs.  The paper
/// contrasts two implementation strategies for generics: C++'s
/// instantiation model (every use specialized, zero abstraction cost)
/// and the dictionary-passing model of the F_G-to-F translation.  This
/// pass recovers the former from the latter:
///
///   * type applications of known type abstractions are inlined
///     (instantiation);
///   * lets binding *values* (dictionaries are tuples of values) are
///     inlined, capture-avoidingly;
///   * projections from known tuples — the compiled form of model
///     member access, `nth (nth d 0) 0` — are constant-folded;
///   * dead pure lets are removed.
///
/// On Figure 5's accumulate this turns every `Monoid<int>.binary_op`
/// into a direct reference to `iadd`, eliminating the dictionary
/// entirely — the "abstraction penalty" ablation measured in BenchEval.
///
/// The result is still plain System F: tests re-check it with the
/// independent typechecker and compare evaluation results.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_OPTIMIZE_H
#define FG_SYSTEMF_OPTIMIZE_H

#include "systemf/Term.h"
#include "systemf/Type.h"
#include <cstddef>
#include <functional>
#include <vector>

namespace fg {
namespace sf {

/// Knobs for the specializer.
struct OptimizeOptions {
  /// Pass-pipeline iterations before giving up on a fixpoint.
  unsigned MaxIterations = 10;
  /// Abort inlining when the term grows beyond this multiple of its
  /// original size (guards against code-size blowup from dictionary
  /// duplication).
  size_t MaxGrowthFactor = 64;

  /// Translation-validation hook: called after every named pass whose
  /// output differs from its input, with the pass name and both terms.
  /// Returning false aborts the pipeline — the optimizer then returns
  /// the rejected pass's *input* (the last accepted term) and records
  /// the pass name in OptimizeStats::AbortedOnPass.  src/validate binds
  /// this to a System F re-typecheck of each pass's output.
  std::function<bool(const char *PassName, const Term *Before,
                     const Term *After)>
      PassHook;

  /// Test-only: an extra rewrite appended to every pipeline iteration
  /// under TestPassName.  ValidateTest injects a deliberately
  /// type-breaking pass here to prove the validator detects the break
  /// and attributes it to the right pass.
  std::function<const Term *(TermArena &Arena, const Term *T)> TestPass;
  const char *TestPassName = "test-pass";
};

/// Counters for reporting and tests.
struct OptimizeStats {
  unsigned TypeAppsInlined = 0;
  unsigned LetsInlined = 0;
  unsigned ProjectionsFolded = 0;
  unsigned DeadLetsRemoved = 0;
  size_t NodesBefore = 0;
  size_t NodesAfter = 0;
  /// Pass rejected by OptimizeOptions::PassHook, or null if none.
  const char *AbortedOnPass = nullptr;
};

/// The named passes of the specialization pipeline, in the order each
/// iteration runs them (exposed so tools and tests can enumerate them).
const std::vector<const char *> &optimizePassNames();

/// Returns the number of AST nodes in \p T.
size_t countTermNodes(const Term *T);

/// Specializes \p T.  New nodes are allocated from \p Arena; types are
/// interned in \p Ctx.  Semantics- and type-preserving (checked by the
/// test suite).
const Term *specialize(TermArena &Arena, TypeContext &Ctx, const Term *T,
                       const OptimizeOptions &Opts = OptimizeOptions(),
                       OptimizeStats *Stats = nullptr);

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_OPTIMIZE_H
