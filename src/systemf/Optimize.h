//===- systemf/Optimize.h - Dictionary specialization -----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program specializer for translated F_G programs.  The paper
/// contrasts two implementation strategies for generics: C++'s
/// instantiation model (every use specialized, zero abstraction cost)
/// and the dictionary-passing model of the F_G-to-F translation.  This
/// pass recovers the former from the latter:
///
///   * type applications of known type abstractions are inlined
///     (instantiation);
///   * lets binding *values* (dictionaries are tuples of values) are
///     inlined, capture-avoidingly;
///   * projections from known tuples — the compiled form of model
///     member access, `nth (nth d 0) 0` — are constant-folded;
///   * dead pure lets are removed.
///
/// On Figure 5's accumulate this turns every `Monoid<int>.binary_op`
/// into a direct reference to `iadd`, eliminating the dictionary
/// entirely — the "abstraction penalty" ablation measured in BenchEval.
///
/// The result is still plain System F: tests re-check it with the
/// independent typechecker and compare evaluation results.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_OPTIMIZE_H
#define FG_SYSTEMF_OPTIMIZE_H

#include "systemf/Specialize.h"
#include "systemf/Term.h"
#include "systemf/Type.h"
#include <cstddef>
#include <functional>
#include <unordered_set>
#include <vector>

namespace fg {
namespace sf {

/// Knobs for the specializer.
struct OptimizeOptions {
  /// Pass-pipeline iterations before giving up on a fixpoint.
  unsigned MaxIterations = 10;
  /// Abort inlining when the term grows beyond this multiple of its
  /// original size (guards against code-size blowup from dictionary
  /// duplication).
  size_t MaxGrowthFactor = 64;

  /// How much of the -O2 specialization pipeline (Specialize.h) to run
  /// on top of the baseline passes.  Off reproduces the -O1 pipeline
  /// exactly.
  SpecializeLevel Specialize = SpecializeLevel::Off;
  /// Per-application cap on the summed structural size of type
  /// arguments accepted by specialize-tyapps.  Nested instantiation
  /// chains (the polymorphic-recursion pattern) double their argument
  /// size at each level, so this bounds the clone cascade; refusals are
  /// counted in OptimizeStats::BudgetHits.
  size_t MaxSpecializeTypeSize = 48;
  /// Names whose type applications specialize-tyapps may hoist into
  /// top-level anchor lets (one per instantiation).  The frontend binds
  /// this to the prelude builtins; null disables hoisting.  Only names
  /// that are *globally* bound to pure values belong here — hoisting
  /// moves the instantiation to program start.
  const std::unordered_set<std::string> *HoistableTyApps = nullptr;

  /// Translation-validation hook: called after every named pass whose
  /// output differs from its input, with the pass name and both terms.
  /// Returning false aborts the pipeline — the optimizer then returns
  /// the rejected pass's *input* (the last accepted term) and records
  /// the pass name in OptimizeStats::AbortedOnPass.  src/validate binds
  /// this to a System F re-typecheck of each pass's output.
  std::function<bool(const char *PassName, const Term *Before,
                     const Term *After)>
      PassHook;

  /// Test-only: an extra rewrite appended to every pipeline iteration
  /// under TestPassName.  ValidateTest injects a deliberately
  /// type-breaking pass here to prove the validator detects the break
  /// and attributes it to the right pass.
  std::function<const Term *(TermArena &Arena, const Term *T)> TestPass;
  const char *TestPassName = "test-pass";
};

/// Counters for reporting and tests.
struct OptimizeStats {
  unsigned TypeAppsInlined = 0;
  unsigned LetsInlined = 0;
  unsigned ProjectionsFolded = 0;
  unsigned DeadLetsRemoved = 0;
  size_t NodesBefore = 0;
  size_t NodesAfter = 0;
  /// Pass rejected by OptimizeOptions::PassHook, or null if none.
  const char *AbortedOnPass = nullptr;

  /// Specialization counters (all zero when Specialize is Off).
  unsigned ClonesCreated = 0;        ///< Specialized function copies made.
  unsigned SpecCacheHits = 0;        ///< Clone-cache hits.
  unsigned MembersDevirtualized = 0; ///< Member projections devirtualized.
  unsigned DictParamsEliminated = 0; ///< Dead dictionary params dropped.
  unsigned DictFieldsEliminated = 0; ///< Dead record fields dropped.
  /// Specializations declined by the size budgets plus pipeline
  /// iterations cut short by the growth budget.
  unsigned BudgetHits = 0;
  /// Pass runs that returned their input unchanged, and pass runs
  /// skipped outright because the input was already known to be a
  /// fixpoint for that pass.
  unsigned NoopPassRuns = 0;
  unsigned NoopPassSkips = 0;
};

/// The named passes of the specialization pipeline, in the order each
/// iteration runs them (exposed so tools and tests can enumerate them).
const std::vector<const char *> &optimizePassNames();

/// Returns the number of AST nodes in \p T.
size_t countTermNodes(const Term *T);

/// Specializes \p T.  New nodes are allocated from \p Arena; types are
/// interned in \p Ctx.  Semantics- and type-preserving (checked by the
/// test suite).
const Term *specialize(TermArena &Arena, TypeContext &Ctx, const Term *T,
                       const OptimizeOptions &Opts = OptimizeOptions(),
                       OptimizeStats *Stats = nullptr);

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_OPTIMIZE_H
