//===- systemf/Optimize.h - Dictionary specialization -----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program specializer for translated F_G programs.  The paper
/// contrasts two implementation strategies for generics: C++'s
/// instantiation model (every use specialized, zero abstraction cost)
/// and the dictionary-passing model of the F_G-to-F translation.  This
/// pass recovers the former from the latter:
///
///   * type applications of known type abstractions are inlined
///     (instantiation);
///   * lets binding *values* (dictionaries are tuples of values) are
///     inlined, capture-avoidingly;
///   * projections from known tuples — the compiled form of model
///     member access, `nth (nth d 0) 0` — are constant-folded;
///   * dead pure lets are removed.
///
/// On Figure 5's accumulate this turns every `Monoid<int>.binary_op`
/// into a direct reference to `iadd`, eliminating the dictionary
/// entirely — the "abstraction penalty" ablation measured in BenchEval.
///
/// The result is still plain System F: tests re-check it with the
/// independent typechecker and compare evaluation results.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_OPTIMIZE_H
#define FG_SYSTEMF_OPTIMIZE_H

#include "systemf/Term.h"
#include "systemf/Type.h"
#include <cstddef>

namespace fg {
namespace sf {

/// Knobs for the specializer.
struct OptimizeOptions {
  /// Pass-pipeline iterations before giving up on a fixpoint.
  unsigned MaxIterations = 10;
  /// Abort inlining when the term grows beyond this multiple of its
  /// original size (guards against code-size blowup from dictionary
  /// duplication).
  size_t MaxGrowthFactor = 64;
};

/// Counters for reporting and tests.
struct OptimizeStats {
  unsigned TypeAppsInlined = 0;
  unsigned LetsInlined = 0;
  unsigned ProjectionsFolded = 0;
  unsigned DeadLetsRemoved = 0;
  size_t NodesBefore = 0;
  size_t NodesAfter = 0;
};

/// Returns the number of AST nodes in \p T.
size_t countTermNodes(const Term *T);

/// Specializes \p T.  New nodes are allocated from \p Arena; types are
/// interned in \p Ctx.  Semantics- and type-preserving (checked by the
/// test suite).
const Term *specialize(TermArena &Arena, TypeContext &Ctx, const Term *T,
                       const OptimizeOptions &Opts = OptimizeOptions(),
                       OptimizeStats *Stats = nullptr);

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_OPTIMIZE_H
