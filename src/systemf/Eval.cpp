//===- systemf/Eval.cpp - CBV evaluator for System F ----------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Eval.h"
#include "support/Stats.h"
#include <cassert>

using namespace fg;
using namespace fg::sf;

namespace {

/// RAII depth guard for the evaluator's recursion counter.
struct DepthGuard {
  unsigned &Depth;
  explicit DepthGuard(unsigned &D) : Depth(D) { ++Depth; }
  ~DepthGuard() { --Depth; }
};

} // namespace

EvalResult Evaluator::eval(const Term *T, EnvPtr Env) {
  stats::ScopedTimer Timer("eval.run");
  Steps = 0;
  Depth = 0;
  EvalResult R = evalTerm(T, Env);
  static std::atomic<uint64_t> &StepCount =
      stats::Statistics::global().counter("eval.steps");
  StepCount += Steps;
  return R;
}

EvalResult Evaluator::apply(const ValuePtr &Fn,
                            const std::vector<ValuePtr> &Args) {
  return applyImpl(Fn, Args);
}

EvalResult Evaluator::evalTerm(const Term *T, const EnvPtr &Env) {
  if (++Steps > Opts.MaxSteps)
    return EvalResult::failure("evaluation exceeded the step limit");
  if (Depth >= Opts.MaxDepth)
    return EvalResult::failure("evaluation exceeded the recursion depth "
                               "limit");
  DepthGuard Guard(Depth);

  switch (T->getKind()) {
  case TermKind::IntLit:
    return EvalResult::success(
        boxInt(cast<IntLit>(T)->getValue()));
  case TermKind::BoolLit:
    return EvalResult::success(
        boxBool(cast<BoolLit>(T)->getValue()));

  case TermKind::Var: {
    const auto *V = cast<VarTerm>(T);
    if (ValuePtr Val = envLookup(Env, V->getName()))
      return EvalResult::success(std::move(Val));
    return EvalResult::failure("unbound variable `" + V->getName() +
                               "` at runtime");
  }

  case TermKind::Abs:
    return EvalResult::success(
        std::make_shared<ClosureValue>(cast<AbsTerm>(T), Env));

  case TermKind::TyAbs:
    return EvalResult::success(
        std::make_shared<TyClosureValue>(cast<TyAbsTerm>(T), Env));

  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    EvalResult Fn = evalTerm(A->getFn(), Env);
    if (!Fn.ok())
      return Fn;
    std::vector<ValuePtr> Args;
    Args.reserve(A->getArgs().size());
    for (const Term *ArgTerm : A->getArgs()) {
      EvalResult Arg = evalTerm(ArgTerm, Env);
      if (!Arg.ok())
        return Arg;
      Args.push_back(std::move(Arg.Val));
    }
    return applyImpl(Fn.Val, Args);
  }

  case TermKind::TyApp: {
    const auto *A = cast<TyAppTerm>(T);
    EvalResult Fn = evalTerm(A->getFn(), Env);
    if (!Fn.ok())
      return Fn;
    // Types are erased: instantiating a type abstraction evaluates its
    // body; all other values (builtins like `nil`) pass through.
    if (const auto *TC = dyn_cast<TyClosureValue>(Fn.Val.get()))
      return evalTerm(TC->getFn()->getBody(), TC->getEnv());
    return Fn;
  }

  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    EvalResult Init = evalTerm(L->getInit(), Env);
    if (!Init.ok())
      return Init;
    return evalTerm(L->getBody(), envBind(Env, L->getName(), Init.Val));
  }

  case TermKind::Tuple: {
    const auto *Tu = cast<TupleTerm>(T);
    std::vector<ValuePtr> Elems;
    Elems.reserve(Tu->getElements().size());
    for (const Term *E : Tu->getElements()) {
      EvalResult R = evalTerm(E, Env);
      if (!R.ok())
        return R;
      Elems.push_back(std::move(R.Val));
    }
    return EvalResult::success(std::make_shared<TupleValue>(std::move(Elems)));
  }

  case TermKind::Nth: {
    const auto *N = cast<NthTerm>(T);
    EvalResult R = evalTerm(N->getTuple(), Env);
    if (!R.ok())
      return R;
    const auto *Tu = dyn_cast<TupleValue>(R.Val.get());
    if (!Tu)
      return EvalResult::failure("`nth` applied to a non-tuple value");
    if (N->getIndex() >= Tu->getElements().size())
      return EvalResult::failure("tuple index out of range at runtime");
    return EvalResult::success(Tu->getElements()[N->getIndex()]);
  }

  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    EvalResult Cond = evalTerm(I->getCond(), Env);
    if (!Cond.ok())
      return Cond;
    const auto *B = dyn_cast<BoolValue>(Cond.Val.get());
    if (!B)
      return EvalResult::failure("`if` condition evaluated to a non-boolean");
    return evalTerm(B->getValue() ? I->getThen() : I->getElse(), Env);
  }

  case TermKind::Fix: {
    const auto *F = cast<FixTerm>(T);
    EvalResult Fn = evalTerm(F->getOperand(), Env);
    if (!Fn.ok())
      return Fn;
    return EvalResult::success(std::make_shared<FixValue>(Fn.Val));
  }
  }
  assert(false && "unknown term kind");
  return EvalResult::failure("internal error: unknown term kind");
}

EvalResult Evaluator::applyImpl(const ValuePtr &Fn,
                                const std::vector<ValuePtr> &Args) {
  if (++Steps > Opts.MaxSteps)
    return EvalResult::failure("evaluation exceeded the step limit");
  if (Depth >= Opts.MaxDepth)
    return EvalResult::failure("evaluation exceeded the recursion depth "
                               "limit");
  DepthGuard Guard(Depth);

  switch (Fn->getKind()) {
  case ValueKind::Closure: {
    const auto *C = cast<ClosureValue>(Fn.get());
    const auto &Params = C->getFn()->getParams();
    if (Params.size() != Args.size())
      return EvalResult::failure("function called with wrong arity");
    EnvPtr Env = C->getEnv();
    for (size_t I = 0; I != Args.size(); ++I)
      Env = envBind(Env, Params[I].Name, Args[I]);
    return evalTerm(C->getFn()->getBody(), Env);
  }

  case ValueKind::Fix: {
    // (fix f)(v...) unrolls to (f (fix f))(v...).
    const auto *FV = cast<FixValue>(Fn.get());
    EvalResult Unrolled = applyImpl(FV->getFn(), {Fn});
    if (!Unrolled.ok())
      return Unrolled;
    return applyImpl(Unrolled.Val, Args);
  }

  case ValueKind::Builtin: {
    const auto *B = cast<BuiltinValue>(Fn.get());
    if (B->getArity() != Args.size())
      return EvalResult::failure("builtin `" + B->getName() +
                                 "` called with wrong arity");
    return B->invoke(Args);
  }

  case ValueKind::Int:
  case ValueKind::Bool:
  case ValueKind::Tuple:
  case ValueKind::List:
  case ValueKind::TyClosure:
    return EvalResult::failure("attempt to call a non-function value `" +
                               valueToString(Fn.get()) + "`");
  case ValueKind::CompiledClosure:
  case ValueKind::CompiledTyClosure:
    return EvalResult::failure("compiled closure passed to the "
                               "tree-walking evaluator");
  case ValueKind::VmClosure:
  case ValueKind::VmTyClosure:
    return EvalResult::failure("VM closure passed to the tree-walking "
                               "evaluator");
  }
  assert(false && "unknown value kind");
  return EvalResult::failure("internal error: unknown value kind");
}
