//===- systemf/TypeCheck.h - System F typechecker ---------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard type system of System F (the paper omits the rules as
/// standard; we implement them fully).  This checker is deliberately
/// independent of the F_G front end: it is used to *dynamically validate*
/// Theorems 1 and 2 of the paper — every term produced by the F_G-to-F
/// translation is re-checked here.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_TYPECHECK_H
#define FG_SYSTEMF_TYPECHECK_H

#include "systemf/Term.h"
#include "systemf/Type.h"
#include <string>
#include <unordered_set>
#include <vector>

namespace fg {
namespace sf {

/// Lexical environment mapping term variables to types.  Used both for
/// the builtin prelude and for user bindings.
class TypeEnv {
public:
  /// Appends a binding; later bindings shadow earlier ones.
  void bind(std::string Name, const Type *Ty) {
    Bindings.emplace_back(std::move(Name), Ty);
  }

  /// Returns the type bound to \p Name, or null.
  const Type *lookup(const std::string &Name) const {
    for (size_t I = Bindings.size(); I != 0; --I)
      if (Bindings[I - 1].first == Name)
        return Bindings[I - 1].second;
    return nullptr;
  }

  size_t size() const { return Bindings.size(); }
  void truncate(size_t N) { Bindings.resize(N); }

  /// The bindings in insertion order (for merging environments).
  const std::vector<std::pair<std::string, const Type *>> &bindings() const {
    return Bindings;
  }

private:
  std::vector<std::pair<std::string, const Type *>> Bindings;
};

/// Checks System F terms.  On failure records a message retrievable via
/// getErrors() and returns null.
class TypeChecker {
public:
  explicit TypeChecker(TypeContext &Ctx) : Ctx(Ctx) {}

  /// Typechecks \p T under \p Env (copied; the prelude typically).
  /// Returns the type, or null after recording at least one error.
  const Type *check(const Term *T, const TypeEnv &Env);

  const std::vector<std::string> &getErrors() const { return Errors; }
  std::string firstError() const { return Errors.empty() ? "" : Errors[0]; }

private:
  const Type *checkTerm(const Term *T);
  bool checkWellFormed(const Type *T, const Term *At);
  const Type *fail(const Term *At, std::string Message);

  TypeContext &Ctx;
  TypeEnv Env;
  std::unordered_set<unsigned> ParamsInScope;
  std::vector<std::string> Errors;
};

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_TYPECHECK_H
