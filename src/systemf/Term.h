//===- systemf/Term.h - System F terms --------------------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Terms of System F (paper Figure 2):
///
///   f ::= x | f(f...) | \y:tau. f | /\t. f | f[tau...]
///       | let x = f in f | (f, ..., f) | nth f n
///
/// extended with integer/boolean literals, `if`, and `fix` which the
/// paper's examples use (Figure 3 writes the higher-order `sum` with a
/// fixpoint).  Terms are plain immutable trees owned by a TermArena.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_TERM_H
#define FG_SYSTEMF_TERM_H

#include "support/Casting.h"
#include "systemf/Type.h"
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace fg {
namespace sf {

/// Discriminator for the Term hierarchy.
enum class TermKind : uint8_t {
  IntLit,
  BoolLit,
  Var,
  Abs,
  App,
  TyAbs,
  TyApp,
  Let,
  Tuple,
  Nth,
  If,
  Fix,
};

/// Base class of all System F terms.
class Term {
public:
  TermKind getKind() const { return Kind; }

  Term(const Term &) = delete;
  Term &operator=(const Term &) = delete;
  virtual ~Term() = default;

protected:
  explicit Term(TermKind K) : Kind(K) {}

private:
  friend class TermArena;
  TermKind Kind;
};

/// An integer literal.
class IntLit : public Term {
public:
  int64_t getValue() const { return Value; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::IntLit; }

private:
  friend class TermArena;
  explicit IntLit(int64_t Value) : Term(TermKind::IntLit), Value(Value) {}
  int64_t Value;
};

/// A boolean literal.
class BoolLit : public Term {
public:
  bool getValue() const { return Value; }

  static bool classof(const Term *T) {
    return T->getKind() == TermKind::BoolLit;
  }

private:
  friend class TermArena;
  explicit BoolLit(bool Value) : Term(TermKind::BoolLit), Value(Value) {}
  bool Value;
};

/// A term variable reference, including references to builtins.
class VarTerm : public Term {
public:
  const std::string &getName() const { return Name; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::Var; }

private:
  friend class TermArena;
  explicit VarTerm(std::string Name)
      : Term(TermKind::Var), Name(std::move(Name)) {}
  std::string Name;
};

/// One lambda parameter: name plus annotated type.
struct ParamBinding {
  std::string Name;
  const Type *Ty;
};

/// A multi-parameter lambda abstraction \(x1:tau1, ...). body.
class AbsTerm : public Term {
public:
  const std::vector<ParamBinding> &getParams() const { return Params; }
  const Term *getBody() const { return Body; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::Abs; }

private:
  friend class TermArena;
  AbsTerm(std::vector<ParamBinding> Params, const Term *Body)
      : Term(TermKind::Abs), Params(std::move(Params)), Body(Body) {}

  std::vector<ParamBinding> Params;
  const Term *Body;
};

/// A (multi-argument) application f(e1, ..., en).
class AppTerm : public Term {
public:
  const Term *getFn() const { return Fn; }
  const std::vector<const Term *> &getArgs() const { return Args; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::App; }

private:
  friend class TermArena;
  AppTerm(const Term *Fn, std::vector<const Term *> Args)
      : Term(TermKind::App), Fn(Fn), Args(std::move(Args)) {}

  const Term *Fn;
  std::vector<const Term *> Args;
};

/// A type abstraction /\t... . body.
class TyAbsTerm : public Term {
public:
  const std::vector<TypeParamDecl> &getParams() const { return Params; }
  const Term *getBody() const { return Body; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::TyAbs; }

private:
  friend class TermArena;
  TyAbsTerm(std::vector<TypeParamDecl> Params, const Term *Body)
      : Term(TermKind::TyAbs), Params(std::move(Params)), Body(Body) {}

  std::vector<TypeParamDecl> Params;
  const Term *Body;
};

/// A type application f[tau...].
class TyAppTerm : public Term {
public:
  const Term *getFn() const { return Fn; }
  const std::vector<const Type *> &getTypeArgs() const { return TypeArgs; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::TyApp; }

private:
  friend class TermArena;
  TyAppTerm(const Term *Fn, std::vector<const Type *> TypeArgs)
      : Term(TermKind::TyApp), Fn(Fn), TypeArgs(std::move(TypeArgs)) {}

  const Term *Fn;
  std::vector<const Type *> TypeArgs;
};

/// let x = e1 in e2.
class LetTerm : public Term {
public:
  const std::string &getName() const { return Name; }
  const Term *getInit() const { return Init; }
  const Term *getBody() const { return Body; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::Let; }

private:
  friend class TermArena;
  LetTerm(std::string Name, const Term *Init, const Term *Body)
      : Term(TermKind::Let), Name(std::move(Name)), Init(Init), Body(Body) {}

  std::string Name;
  const Term *Init;
  const Term *Body;
};

/// A tuple construction (e1, ..., en).  Dictionaries are built this way.
class TupleTerm : public Term {
public:
  const std::vector<const Term *> &getElements() const { return Elements; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::Tuple; }

private:
  friend class TermArena;
  explicit TupleTerm(std::vector<const Term *> Elements)
      : Term(TermKind::Tuple), Elements(std::move(Elements)) {}

  std::vector<const Term *> Elements;
};

/// Tuple projection `nth e i`.
class NthTerm : public Term {
public:
  const Term *getTuple() const { return Tuple; }
  unsigned getIndex() const { return Index; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::Nth; }

private:
  friend class TermArena;
  NthTerm(const Term *Tuple, unsigned Index)
      : Term(TermKind::Nth), Tuple(Tuple), Index(Index) {}

  const Term *Tuple;
  unsigned Index;
};

/// if c then t else e.
class IfTerm : public Term {
public:
  const Term *getCond() const { return Cond; }
  const Term *getThen() const { return Then; }
  const Term *getElse() const { return Else; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::If; }

private:
  friend class TermArena;
  IfTerm(const Term *Cond, const Term *Then, const Term *Else)
      : Term(TermKind::If), Cond(Cond), Then(Then), Else(Else) {}

  const Term *Cond;
  const Term *Then;
  const Term *Else;
};

/// fix e — the call-by-value fixpoint over function types.
class FixTerm : public Term {
public:
  const Term *getOperand() const { return Operand; }

  static bool classof(const Term *T) { return T->getKind() == TermKind::Fix; }

private:
  friend class TermArena;
  explicit FixTerm(const Term *Operand)
      : Term(TermKind::Fix), Operand(Operand) {}

  const Term *Operand;
};

/// Owns System F terms; all factory methods return arena pointers that
/// live as long as the arena.
class TermArena {
public:
  const Term *makeIntLit(int64_t Value) { return add(new IntLit(Value)); }
  const Term *makeBoolLit(bool Value) { return add(new BoolLit(Value)); }
  const Term *makeVar(std::string Name) {
    return add(new VarTerm(std::move(Name)));
  }
  const Term *makeAbs(std::vector<ParamBinding> Params, const Term *Body) {
    return add(new AbsTerm(std::move(Params), Body));
  }
  const Term *makeApp(const Term *Fn, std::vector<const Term *> Args) {
    return add(new AppTerm(Fn, std::move(Args)));
  }
  const Term *makeTyAbs(std::vector<TypeParamDecl> Params, const Term *Body) {
    return add(new TyAbsTerm(std::move(Params), Body));
  }
  const Term *makeTyApp(const Term *Fn, std::vector<const Type *> TypeArgs) {
    return add(new TyAppTerm(Fn, std::move(TypeArgs)));
  }
  const Term *makeLet(std::string Name, const Term *Init, const Term *Body) {
    return add(new LetTerm(std::move(Name), Init, Body));
  }
  const Term *makeTuple(std::vector<const Term *> Elements) {
    return add(new TupleTerm(std::move(Elements)));
  }
  const Term *makeNth(const Term *Tuple, unsigned Index) {
    return add(new NthTerm(Tuple, Index));
  }
  const Term *makeIf(const Term *Cond, const Term *Then, const Term *Else) {
    return add(new IfTerm(Cond, Then, Else));
  }
  const Term *makeFix(const Term *Operand) { return add(new FixTerm(Operand)); }

  unsigned getNumTerms() const { return Owned.size(); }

private:
  const Term *add(Term *T) {
    Owned.emplace_back(T);
    return T;
  }

  std::deque<std::unique_ptr<Term>> Owned;
};

/// Renders a term in the paper's concrete syntax.
std::string termToString(const Term *T);

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_TERM_H
