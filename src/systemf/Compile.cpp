//===- systemf/Compile.cpp - Closure-compiling evaluator ------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Compile.h"
#include "support/Stats.h"
#include <cassert>
#include <functional>
#include <unordered_map>
#include <vector>

using namespace fg;
using namespace fg::sf;

namespace {

//===----------------------------------------------------------------------===//
// Runtime representation
//===----------------------------------------------------------------------===//

/// A runtime frame: one per lambda application or let binding.
struct Frame {
  std::vector<ValuePtr> Slots;
  std::shared_ptr<const Frame> Parent;

  Frame() = default;
  Frame(const Frame &) = delete;
  Frame &operator=(const Frame &) = delete;

  /// Frame chains are spines like environments and lists: a deep chain
  /// dying all at once must unwind iteratively, not by recursive
  /// ~shared_ptr chaining (see EnvNode::~EnvNode).
  ~Frame() {
    std::shared_ptr<const Frame> P = std::move(Parent);
    while (P && P.use_count() == 1) {
      std::shared_ptr<const Frame> Next =
          std::move(const_cast<Frame &>(*P).Parent);
      P = std::move(Next);
    }
  }
};
using FramePtr = std::shared_ptr<const Frame>;

/// Shared execution state (limits).
struct VMState {
  uint64_t Steps = 0;
  unsigned Depth = 0;
  EvalOptions Opts;
};

/// Compiled code: evaluate under a frame chain.
using Code = std::function<EvalResult(VMState &, const FramePtr &)>;
using CodePtr = std::shared_ptr<const Code>;

class CompiledClosureValue : public Value {
public:
  CompiledClosureValue(CodePtr Body, unsigned Arity, FramePtr Env)
      : Value(ValueKind::CompiledClosure), Body(std::move(Body)),
        Arity(Arity), Env(std::move(Env)) {}
  CodePtr Body;
  unsigned Arity;
  FramePtr Env;

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::CompiledClosure;
  }
};

class CompiledTyClosureValue : public Value {
public:
  CompiledTyClosureValue(CodePtr Body, FramePtr Env)
      : Value(ValueKind::CompiledTyClosure), Body(std::move(Body)),
        Env(std::move(Env)) {}
  CodePtr Body;
  FramePtr Env;

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::CompiledTyClosure;
  }
};

EvalResult applyValue(VMState &S, const ValuePtr &Fn,
                      const std::vector<ValuePtr> &Args) {
  if (++S.Steps > S.Opts.MaxSteps)
    return EvalResult::failure("evaluation exceeded the step limit");
  if (S.Depth >= S.Opts.MaxDepth)
    return EvalResult::failure("evaluation exceeded the recursion depth "
                               "limit");
  ++S.Depth;
  EvalResult R = [&]() -> EvalResult {
    switch (Fn->getKind()) {
    case ValueKind::CompiledClosure: {
      const auto *C = cast<CompiledClosureValue>(Fn.get());
      if (C->Arity != Args.size())
        return EvalResult::failure("function called with wrong arity");
      auto F = std::make_shared<Frame>();
      F->Slots = Args;
      F->Parent = C->Env;
      return (*C->Body)(S, F);
    }
    case ValueKind::Fix: {
      const auto *FV = cast<FixValue>(Fn.get());
      EvalResult Unrolled = applyValue(S, FV->getFn(), {Fn});
      if (!Unrolled.ok())
        return Unrolled;
      return applyValue(S, Unrolled.Val, Args);
    }
    case ValueKind::Builtin: {
      const auto *B = cast<BuiltinValue>(Fn.get());
      if (B->getArity() != Args.size())
        return EvalResult::failure("builtin `" + B->getName() +
                                   "` called with wrong arity");
      return B->invoke(Args);
    }
    default:
      return EvalResult::failure("attempt to call a non-function value `" +
                                 valueToString(Fn.get()) + "`");
    }
  }();
  --S.Depth;
  return R;
}

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

/// Compile-time scope: one name list per runtime frame, innermost last.
class Scope {
public:
  void pushFrame(std::vector<std::string> Names) {
    Frames.push_back(std::move(Names));
  }
  void popFrame() { Frames.pop_back(); }

  /// Resolves a name to (frames-up, slot) coordinates.
  bool resolve(const std::string &Name, unsigned &UpOut,
               unsigned &SlotOut) const {
    for (size_t D = Frames.size(); D != 0; --D) {
      const auto &F = Frames[D - 1];
      // Scan backwards so later duplicate parameters shadow earlier.
      for (size_t I = F.size(); I != 0; --I)
        if (F[I - 1] == Name) {
          UpOut = static_cast<unsigned>(Frames.size() - D);
          SlotOut = static_cast<unsigned>(I - 1);
          return true;
        }
    }
    return false;
  }

private:
  std::vector<std::vector<std::string>> Frames;
};

class Compiler {
public:
  Compiler(const Prelude &P) {
    for (const BuiltinEntry &E : P.Entries)
      Globals[E.Name] = E.Val;
  }

  bool ok() const { return Error.empty(); }
  std::string Error;

  Code compile(const Term *T, Scope &S) {
    switch (T->getKind()) {
    case TermKind::IntLit: {
      ValuePtr V = boxInt(cast<IntLit>(T)->getValue());
      return [V](VMState &, const FramePtr &) {
        return EvalResult::success(V);
      };
    }
    case TermKind::BoolLit: {
      ValuePtr V = boxBool(cast<BoolLit>(T)->getValue());
      return [V](VMState &, const FramePtr &) {
        return EvalResult::success(V);
      };
    }

    case TermKind::Var: {
      const std::string &Name = cast<VarTerm>(T)->getName();
      unsigned Up = 0, Slot = 0;
      if (S.resolve(Name, Up, Slot)) {
        return [Up, Slot](VMState &, const FramePtr &F) {
          const Frame *Fr = F.get();
          for (unsigned I = 0; I < Up; ++I)
            Fr = Fr->Parent.get();
          return EvalResult::success(Fr->Slots[Slot]);
        };
      }
      auto It = Globals.find(Name);
      if (It != Globals.end()) {
        ValuePtr V = It->second;
        return [V](VMState &, const FramePtr &) {
          return EvalResult::success(V);
        };
      }
      if (Error.empty())
        Error = "unbound variable `" + Name + "` at compile time";
      return [](VMState &, const FramePtr &) {
        return EvalResult::failure("internal error: unbound variable");
      };
    }

    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      std::vector<std::string> Names;
      for (const ParamBinding &P : A->getParams())
        Names.push_back(P.Name);
      unsigned Arity = Names.size();
      S.pushFrame(std::move(Names));
      CodePtr Body = std::make_shared<Code>(compile(A->getBody(), S));
      S.popFrame();
      return [Body, Arity](VMState &, const FramePtr &F) {
        return EvalResult::success(
            std::make_shared<CompiledClosureValue>(Body, Arity, F));
      };
    }

    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      Code Fn = compile(A->getFn(), S);
      std::vector<Code> Args;
      for (const Term *Arg : A->getArgs())
        Args.push_back(compile(Arg, S));
      return [Fn = std::move(Fn),
              Args = std::move(Args)](VMState &St, const FramePtr &F) {
        EvalResult FnV = Fn(St, F);
        if (!FnV.ok())
          return FnV;
        std::vector<ValuePtr> ArgVs;
        ArgVs.reserve(Args.size());
        for (const Code &C : Args) {
          EvalResult R = C(St, F);
          if (!R.ok())
            return R;
          ArgVs.push_back(std::move(R.Val));
        }
        return applyValue(St, FnV.Val, ArgVs);
      };
    }

    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      CodePtr Body = std::make_shared<Code>(compile(A->getBody(), S));
      return [Body](VMState &, const FramePtr &F) {
        return EvalResult::success(
            std::make_shared<CompiledTyClosureValue>(Body, F));
      };
    }

    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      Code Fn = compile(A->getFn(), S);
      return [Fn = std::move(Fn)](VMState &St, const FramePtr &F) {
        EvalResult R = Fn(St, F);
        if (!R.ok())
          return R;
        if (const auto *TC =
                dyn_cast<CompiledTyClosureValue>(R.Val.get())) {
          // Instantiation re-enters the body: a reduction step, counted
          // like the tree evaluator counts it.
          if (++St.Steps > St.Opts.MaxSteps)
            return EvalResult::failure("evaluation exceeded the step "
                                       "limit");
          return (*TC->Body)(St, TC->Env);
        }
        return R; // Builtins are type-erased.
      };
    }

    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      Code Init = compile(L->getInit(), S);
      S.pushFrame({L->getName()});
      Code Body = compile(L->getBody(), S);
      S.popFrame();
      return [Init = std::move(Init),
              Body = std::move(Body)](VMState &St, const FramePtr &F) {
        EvalResult I = Init(St, F);
        if (!I.ok())
          return I;
        auto NF = std::make_shared<Frame>();
        NF->Slots.push_back(std::move(I.Val));
        NF->Parent = F;
        return Body(St, NF);
      };
    }

    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<Code> Elems;
      for (const Term *E : Tu->getElements())
        Elems.push_back(compile(E, S));
      return [Elems = std::move(Elems)](VMState &St, const FramePtr &F) {
        std::vector<ValuePtr> Vs;
        Vs.reserve(Elems.size());
        for (const Code &C : Elems) {
          EvalResult R = C(St, F);
          if (!R.ok())
            return R;
          Vs.push_back(std::move(R.Val));
        }
        return EvalResult::success(
            std::make_shared<TupleValue>(std::move(Vs)));
      };
    }

    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      Code Tu = compile(N->getTuple(), S);
      unsigned Idx = N->getIndex();
      return [Tu = std::move(Tu), Idx](VMState &St, const FramePtr &F) {
        EvalResult R = Tu(St, F);
        if (!R.ok())
          return R;
        const auto *T = dyn_cast<TupleValue>(R.Val.get());
        if (!T)
          return EvalResult::failure("`nth` applied to a non-tuple value");
        if (Idx >= T->getElements().size())
          return EvalResult::failure("tuple index out of range at runtime");
        return EvalResult::success(T->getElements()[Idx]);
      };
    }

    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      Code C = compile(I->getCond(), S);
      Code Th = compile(I->getThen(), S);
      Code El = compile(I->getElse(), S);
      return [C = std::move(C), Th = std::move(Th),
              El = std::move(El)](VMState &St, const FramePtr &F) {
        EvalResult R = C(St, F);
        if (!R.ok())
          return R;
        const auto *B = dyn_cast<BoolValue>(R.Val.get());
        if (!B)
          return EvalResult::failure("`if` condition evaluated to a "
                                     "non-boolean");
        return B->getValue() ? Th(St, F) : El(St, F);
      };
    }

    case TermKind::Fix: {
      Code Op = compile(cast<FixTerm>(T)->getOperand(), S);
      return [Op = std::move(Op)](VMState &St, const FramePtr &F) {
        EvalResult R = Op(St, F);
        if (!R.ok())
          return R;
        return EvalResult::success(std::make_shared<FixValue>(R.Val));
      };
    }
    }
    assert(false && "unknown term kind");
    return [](VMState &, const FramePtr &) {
      return EvalResult::failure("internal error: unknown term kind");
    };
  }

private:
  std::unordered_map<std::string, ValuePtr> Globals;
};

} // namespace

//===----------------------------------------------------------------------===//
// CompiledTerm
//===----------------------------------------------------------------------===//

struct CompiledTerm::Impl {
  Code Entry;
};

CompiledTerm::CompiledTerm() : P(std::make_unique<Impl>()) {}
CompiledTerm::~CompiledTerm() = default;
CompiledTerm::CompiledTerm(CompiledTerm &&) noexcept = default;

std::unique_ptr<CompiledTerm> CompiledTerm::compile(const Term *T,
                                                    const Prelude &Pre,
                                                    std::string *ErrorOut) {
  stats::ScopedTimer Timer("compile.closures");
  Compiler C(Pre);
  Scope S;
  Code Entry = C.compile(T, S);
  if (!C.ok()) {
    if (ErrorOut)
      *ErrorOut = C.Error;
    return nullptr;
  }
  auto Out = std::unique_ptr<CompiledTerm>(new CompiledTerm());
  Out->P->Entry = std::move(Entry);
  return Out;
}

EvalResult CompiledTerm::run(const EvalOptions &Opts) const {
  VMState S;
  S.Opts = Opts;
  return P->Entry(S, nullptr);
}
