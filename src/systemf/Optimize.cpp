//===- systemf/Optimize.cpp - Dictionary specialization -------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Optimize.h"
#include "support/Stats.h"
#include "systemf/Specialize.h"
#include "systemf/TermOps.h"
#include <cassert>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace fg;
using namespace fg::sf;

size_t fg::sf::countTermNodes(const Term *T) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
  case TermKind::Var:
    return 1;
  case TermKind::Abs:
    return 1 + countTermNodes(cast<AbsTerm>(T)->getBody());
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    size_t N = 1 + countTermNodes(A->getFn());
    for (const Term *Arg : A->getArgs())
      N += countTermNodes(Arg);
    return N;
  }
  case TermKind::TyAbs:
    return 1 + countTermNodes(cast<TyAbsTerm>(T)->getBody());
  case TermKind::TyApp:
    return 1 + countTermNodes(cast<TyAppTerm>(T)->getFn());
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    return 1 + countTermNodes(L->getInit()) + countTermNodes(L->getBody());
  }
  case TermKind::Tuple: {
    size_t N = 1;
    for (const Term *E : cast<TupleTerm>(T)->getElements())
      N += countTermNodes(E);
    return N;
  }
  case TermKind::Nth:
    return 1 + countTermNodes(cast<NthTerm>(T)->getTuple());
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    return 1 + countTermNodes(I->getCond()) + countTermNodes(I->getThen()) +
           countTermNodes(I->getElse());
  }
  case TermKind::Fix:
    return 1 + countTermNodes(cast<FixTerm>(T)->getOperand());
  }
  return 1;
}

namespace {

/// The pipeline's named passes.  Each is one bottom-up traversal doing
/// only its own rewrites; an iteration of the pipeline runs them in
/// order and the whole sequence repeats until a fixpoint.  Keeping the
/// passes separate is what makes per-pass translation validation
/// meaningful: a type-breaking rewrite is attributed to one name.
enum : unsigned {
  PassInstantiate = 1u << 0, ///< TyApp-of-TyAbs inlining.
  PassBetaInline = 1u << 1,  ///< App-of-Abs beta reduction.
  PassInlineLets = 1u << 2,  ///< Let inlining + dead-let elimination.
  PassFold = 1u << 3,        ///< Tuple-projection and `if` folding.
  PassSpecTyApps = 1u << 4,  ///< Clone let-bound Λs at concrete types.
  PassDevirt = 1u << 5,      ///< Dictionary-shape propagation + MEM rewrite.
  PassDeadDicts = 1u << 6,   ///< Dead dictionary params/fields.
};

struct PassDesc {
  const char *Name;
  unsigned Mask;
};

/// The -O2 passes interleave with the baseline ones: specialization
/// runs first so it sees the translation's original let structure
/// before inlining duplicates it, and dead-dictionary cleanup runs last
/// over whatever the reducing passes left behind.
constexpr PassDesc Pipeline[] = {
    {"specialize-tyapps", PassSpecTyApps},
    {"devirtualize-dicts", PassDevirt},
    {"instantiate-tyapps", PassInstantiate},
    {"beta-inline", PassBetaInline},
    {"inline-lets", PassInlineLets},
    {"fold-projections", PassFold},
    {"eliminate-dead-dicts", PassDeadDicts},
};

/// The pass set a specialization level enables (levels are cumulative).
unsigned enabledMask(SpecializeLevel L) {
  unsigned M = PassInstantiate | PassBetaInline | PassInlineLets | PassFold;
  if (L >= SpecializeLevel::Apps)
    M |= PassSpecTyApps;
  if (L >= SpecializeLevel::Dicts)
    M |= PassDevirt;
  if (L >= SpecializeLevel::Full)
    M |= PassDeadDicts;
  return M;
}

/// The specializer.  All rewriting preserves sharing: a transform
/// returns the original node when nothing changed underneath it.
class Specializer {
public:
  Specializer(TermArena &Arena, TypeContext &Ctx,
              const OptimizeOptions &Opts, OptimizeStats &Stats)
      : Arena(Arena), Ctx(Ctx), Opts(Opts), Stats(Stats),
        Spec(Arena, Ctx, Opts.HoistableTyApps) {}

  const Term *run(const Term *T) {
    Stats.NodesBefore = countTermNodes(T);
    Budget = std::max<size_t>(4096, Stats.NodesBefore * Opts.MaxGrowthFactor);
    const unsigned Enabled = enabledMask(Opts.Specialize);
    for (unsigned I = 0; I < Opts.MaxIterations; ++I) {
      const Term *IterStart = T;
      for (const PassDesc &P : Pipeline) {
        if (!(P.Mask & Enabled))
          continue;
        // A pass that reported "no change" on this exact term need not
        // run again until some other pass produces a new term.
        auto Memo = LastNoopInput.find(P.Name);
        if (Memo != LastNoopInput.end() && Memo->second == T) {
          ++Stats.NoopPassSkips;
          continue;
        }
        const Term *Next = runPass(P, T);
        if (Next == T) {
          ++Stats.NoopPassRuns;
          LastNoopInput[P.Name] = T;
          continue;
        }
        if (!firePassHook(P.Name, T, Next))
          return finish(T); // The last term the hook accepted.
        T = Next;
      }
      if (Opts.TestPass) {
        const Term *Next = Opts.TestPass(Arena, T);
        if (Next != T && !firePassHook(Opts.TestPassName, T, Next))
          return finish(T);
        T = Next;
      }
      if (T == IterStart)
        break;
      if (countTermNodes(T) > Budget) {
        ++Stats.BudgetHits;
        break;
      }
    }
    return finish(T);
  }

private:
  /// Dispatches one named pass.
  const Term *runPass(const PassDesc &P, const Term *T) {
    switch (P.Mask) {
    case PassSpecTyApps: {
      size_t Current = countTermNodes(T);
      return Spec.runTypeAppSpecialize(T,
                                       Budget > Current ? Budget - Current : 0,
                                       Opts.MaxSpecializeTypeSize);
    }
    case PassDevirt:
      return Spec.runDevirtualizeDicts(T);
    case PassDeadDicts:
      return Spec.runEliminateDeadDicts(T);
    default:
      Mask = P.Mask;
      return rewrite(T);
    }
  }

  /// Final bookkeeping on every exit path: node count and the
  /// specialization pass counters.
  const Term *finish(const Term *T) {
    Stats.NodesAfter = countTermNodes(T);
    const SpecializeCounters &C = Spec.counters();
    Stats.ClonesCreated = C.ClonesCreated;
    Stats.SpecCacheHits = C.CacheHits;
    Stats.MembersDevirtualized = C.MembersDevirtualized;
    Stats.DictParamsEliminated = C.DictParamsEliminated;
    Stats.DictFieldsEliminated = C.DictFieldsEliminated;
    Stats.BudgetHits += C.BudgetHits;
    Stats.LetsInlined += C.LetBetaExpansions;
    return T;
  }
  /// Runs the validation hook on one changed pass output; records the
  /// rejected pass in the stats.  True means "keep going".
  bool firePassHook(const char *Name, const Term *Before, const Term *After) {
    if (!Opts.PassHook || Opts.PassHook(Name, Before, After))
      return true;
    Stats.AbortedOnPass = Name;
    return false;
  }

  std::string freshName(const std::string &Base) {
    return Base + "$r" + std::to_string(NextRename++);
  }

  //===--------------------------------------------------------------===//
  // The rewrite pass (bottom-up, one simplification round; Mask selects
  // which of the named passes' rewrites fire)
  //===--------------------------------------------------------------===//

  const Term *rewrite(const Term *T) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;

    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      const Term *Body = rewrite(A->getBody());
      return Body == A->getBody() ? T
                                  : Arena.makeAbs(A->getParams(), Body);
    }

    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const Term *Fn = rewrite(A->getFn());
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = rewrite(Arg);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      // Beta-reduce (fun(x...). body)(v...) for pure arguments — the
      // dictionary application exposed by TyApp inlining.
      if (const auto *Abs = dyn_cast<AbsTerm>(Fn);
          Abs && (Mask & PassBetaInline)) {
        bool AllPure = Abs->getParams().size() == Args.size();
        for (const Term *Arg : Args)
          AllPure &= isPureTerm(Arg);
        if (AllPure) {
          // Rename all parameters to fresh names first so sequential
          // substitution is equivalent to simultaneous substitution.
          // Rename back to front: with duplicate parameter names the
          // body occurrences belong to the *last* duplicate (evaluation
          // binds left to right, later shadowing earlier), so it must
          // claim them before the earlier duplicates are renamed.
          const Term *Body = Abs->getBody();
          std::vector<std::string> Fresh(Abs->getParams().size());
          for (size_t I = Abs->getParams().size(); I-- != 0;) {
            const ParamBinding &P = Abs->getParams()[I];
            std::string NewName = freshName(P.Name);
            Body = substituteTermVar(Arena, Body, P.Name,
                                     Arena.makeVar(NewName), {}, NextRename);
            Fresh[I] = std::move(NewName);
          }
          for (size_t I = 0; I != Args.size(); ++I)
            Body = substituteTermVar(Arena, Body, Fresh[I], Args[I],
                                     freeTermVars(Args[I]), NextRename);
          ++Stats.LetsInlined;
          return Body;
        }
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }

    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = rewrite(A->getBody());
      return Body == A->getBody() ? T
                                  : Arena.makeTyAbs(A->getParams(), Body);
    }

    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = rewrite(A->getFn());
      // Instantiate a known type abstraction (the C++ model).
      if (const auto *TA = dyn_cast<TyAbsTerm>(Fn);
          TA && (Mask & PassInstantiate)) {
        if (TA->getParams().size() == A->getTypeArgs().size()) {
          TypeSubst S;
          for (size_t I = 0; I != TA->getParams().size(); ++I)
            S[TA->getParams()[I].Id] = A->getTypeArgs()[I];
          ++Stats.TypeAppsInlined;
          return substituteTermTypes(Arena, Ctx, TA->getBody(), S);
        }
      }
      return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
    }

    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = rewrite(L->getInit());
      const Term *Body = rewrite(L->getBody());
      if ((Mask & PassInlineLets) && isPureTerm(Init)) {
        unsigned N = countVarOccurrences(Body, L->getName());
        if (N == 0) {
          ++Stats.DeadLetsRemoved;
          return Body;
        }
        size_t InitSize = countTermNodes(Init);
        bool FitsBudget =
            N == 1 || InitSize <= 8 ||
            countTermNodes(Body) + (N - 1) * InitSize <= Budget;
        if (FitsBudget) {
          ++Stats.LetsInlined;
          return substituteTermVar(Arena, Body, L->getName(), Init,
                                   freeTermVars(Init), NextRename);
        }
      }
      if (Init == L->getInit() && Body == L->getBody())
        return T;
      return Arena.makeLet(L->getName(), Init, Body);
    }

    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = rewrite(E);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }

    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = rewrite(N->getTuple());
      // Fold `nth (e0, ..., en) i` when dropping the other elements is
      // safe (all pure) — compiled member access collapses this way.
      if (const auto *Lit = dyn_cast<TupleTerm>(Tu);
          Lit && (Mask & PassFold)) {
        if (N->getIndex() < Lit->getElements().size()) {
          bool AllPure = true;
          for (const Term *E : Lit->getElements())
            AllPure &= isPureTerm(E);
          if (AllPure) {
            ++Stats.ProjectionsFolded;
            return Lit->getElements()[N->getIndex()];
          }
        }
      }
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }

    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = rewrite(I->getCond());
      const Term *Th = rewrite(I->getThen());
      const Term *El = rewrite(I->getElse());
      // Constant-fold a literal condition.
      if (const auto *B = dyn_cast<BoolLit>(C); B && (Mask & PassFold))
        return B->getValue() ? Th : El;
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }

    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = rewrite(F->getOperand());
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  TermArena &Arena;
  TypeContext &Ctx;
  const OptimizeOptions &Opts;
  OptimizeStats &Stats;
  size_t Budget = 0;
  unsigned NextRename = 0;
  unsigned Mask = ~0u; ///< Rewrites enabled in the current pass.
  /// The -O2 pass object (persistent fresh-name counters, counters).
  SpecializePasses Spec;
  /// Per-pass memo of the last input the pass left unchanged.
  std::unordered_map<const char *, const Term *> LastNoopInput;
};

} // namespace

const std::vector<const char *> &fg::sf::optimizePassNames() {
  static const std::vector<const char *> Names = [] {
    std::vector<const char *> N;
    for (const PassDesc &P : Pipeline)
      N.push_back(P.Name);
    return N;
  }();
  return Names;
}

const Term *fg::sf::specialize(TermArena &Arena, TypeContext &Ctx,
                               const Term *T, const OptimizeOptions &Opts,
                               OptimizeStats *Stats) {
  fg::stats::ScopedTimer Timer("optimize.specialize");
  OptimizeStats Local;
  OptimizeStats &Out = Stats ? *Stats : Local;
  Specializer S(Arena, Ctx, Opts, Out);
  const Term *Result = S.run(T);
  fg::stats::Statistics &G = fg::stats::Statistics::global();
  G.add("optimize.typeapps_inlined", Out.TypeAppsInlined);
  G.add("optimize.lets_inlined", Out.LetsInlined);
  G.add("optimize.projections_folded", Out.ProjectionsFolded);
  G.add("optimize.dead_lets_removed", Out.DeadLetsRemoved);
  G.add("optimize.pass.noop", Out.NoopPassRuns);
  G.add("optimize.pass.noop_skipped", Out.NoopPassSkips);
  if (Opts.Specialize != SpecializeLevel::Off) {
    G.add("specialize.clones_created", Out.ClonesCreated);
    G.add("specialize.cache_hits", Out.SpecCacheHits);
    G.add("specialize.members_devirtualized", Out.MembersDevirtualized);
    G.add("specialize.dict_params_eliminated", Out.DictParamsEliminated);
    G.add("specialize.dict_fields_eliminated", Out.DictFieldsEliminated);
    G.add("specialize.budget_hits", Out.BudgetHits);
    if (Out.NodesAfter > Out.NodesBefore)
      G.add("specialize.size_growth", Out.NodesAfter - Out.NodesBefore);
  }
  return Result;
}
