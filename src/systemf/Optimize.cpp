//===- systemf/Optimize.cpp - Dictionary specialization -------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Optimize.h"
#include "support/Stats.h"
#include <cassert>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace fg;
using namespace fg::sf;

size_t fg::sf::countTermNodes(const Term *T) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
  case TermKind::Var:
    return 1;
  case TermKind::Abs:
    return 1 + countTermNodes(cast<AbsTerm>(T)->getBody());
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    size_t N = 1 + countTermNodes(A->getFn());
    for (const Term *Arg : A->getArgs())
      N += countTermNodes(Arg);
    return N;
  }
  case TermKind::TyAbs:
    return 1 + countTermNodes(cast<TyAbsTerm>(T)->getBody());
  case TermKind::TyApp:
    return 1 + countTermNodes(cast<TyAppTerm>(T)->getFn());
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    return 1 + countTermNodes(L->getInit()) + countTermNodes(L->getBody());
  }
  case TermKind::Tuple: {
    size_t N = 1;
    for (const Term *E : cast<TupleTerm>(T)->getElements())
      N += countTermNodes(E);
    return N;
  }
  case TermKind::Nth:
    return 1 + countTermNodes(cast<NthTerm>(T)->getTuple());
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    return 1 + countTermNodes(I->getCond()) + countTermNodes(I->getThen()) +
           countTermNodes(I->getElse());
  }
  case TermKind::Fix:
    return 1 + countTermNodes(cast<FixTerm>(T)->getOperand());
  }
  return 1;
}

namespace {

/// The pipeline's named passes.  Each is one bottom-up traversal doing
/// only its own rewrites; an iteration of the pipeline runs them in
/// order and the whole sequence repeats until a fixpoint.  Keeping the
/// passes separate is what makes per-pass translation validation
/// meaningful: a type-breaking rewrite is attributed to one name.
enum : unsigned {
  PassInstantiate = 1u << 0, ///< TyApp-of-TyAbs inlining.
  PassBetaInline = 1u << 1,  ///< App-of-Abs beta reduction.
  PassInlineLets = 1u << 2,  ///< Let inlining + dead-let elimination.
  PassFold = 1u << 3,        ///< Tuple-projection and `if` folding.
};

struct PassDesc {
  const char *Name;
  unsigned Mask;
};

constexpr PassDesc Pipeline[] = {
    {"instantiate-tyapps", PassInstantiate},
    {"beta-inline", PassBetaInline},
    {"inline-lets", PassInlineLets},
    {"fold-projections", PassFold},
};

/// The specializer.  All rewriting preserves sharing: a transform
/// returns the original node when nothing changed underneath it.
class Specializer {
public:
  Specializer(TermArena &Arena, TypeContext &Ctx,
              const OptimizeOptions &Opts, OptimizeStats &Stats)
      : Arena(Arena), Ctx(Ctx), Opts(Opts), Stats(Stats) {}

  const Term *run(const Term *T) {
    Stats.NodesBefore = countTermNodes(T);
    Budget = std::max<size_t>(4096, Stats.NodesBefore * Opts.MaxGrowthFactor);
    for (unsigned I = 0; I < Opts.MaxIterations; ++I) {
      const Term *IterStart = T;
      for (const PassDesc &P : Pipeline) {
        Mask = P.Mask;
        const Term *Next = rewrite(T);
        if (Next != T && !firePassHook(P.Name, T, Next)) {
          Stats.NodesAfter = countTermNodes(T);
          return T; // The last term the hook accepted.
        }
        T = Next;
      }
      if (Opts.TestPass) {
        const Term *Next = Opts.TestPass(Arena, T);
        if (Next != T && !firePassHook(Opts.TestPassName, T, Next)) {
          Stats.NodesAfter = countTermNodes(T);
          return T;
        }
        T = Next;
      }
      if (T == IterStart)
        break;
      if (countTermNodes(T) > Budget)
        break;
    }
    Stats.NodesAfter = countTermNodes(T);
    return T;
  }

private:
  /// Runs the validation hook on one changed pass output; records the
  /// rejected pass in the stats.  True means "keep going".
  bool firePassHook(const char *Name, const Term *Before, const Term *After) {
    if (!Opts.PassHook || Opts.PassHook(Name, Before, After))
      return true;
    Stats.AbortedOnPass = Name;
    return false;
  }

  //===--------------------------------------------------------------===//
  // Predicates
  //===--------------------------------------------------------------===//

  /// Pure, terminating terms: safe to duplicate, reorder, or drop.  On a
  /// *well-typed* program `nth` of a pure tuple cannot fail, so it is
  /// included; applications are not (they may diverge or error).
  static bool isPure(const Term *T) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
    case TermKind::Abs:
    case TermKind::TyAbs:
      return true;
    case TermKind::Tuple:
      for (const Term *E : cast<TupleTerm>(T)->getElements())
        if (!isPure(E))
          return false;
      return true;
    case TermKind::Nth:
      return isPure(cast<NthTerm>(T)->getTuple());
    case TermKind::Fix:
      return isPure(cast<FixTerm>(T)->getOperand());
    default:
      return false;
    }
  }

  //===--------------------------------------------------------------===//
  // Free variables / occurrence counting
  //===--------------------------------------------------------------===//

  static void freeVarsImpl(const Term *T,
                           std::unordered_set<std::string> &Bound,
                           std::unordered_set<std::string> &Out) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
      return;
    case TermKind::Var: {
      const std::string &N = cast<VarTerm>(T)->getName();
      if (!Bound.count(N))
        Out.insert(N);
      return;
    }
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      std::vector<std::string> Added;
      for (const ParamBinding &P : A->getParams())
        if (Bound.insert(P.Name).second)
          Added.push_back(P.Name);
      freeVarsImpl(A->getBody(), Bound, Out);
      for (const std::string &N : Added)
        Bound.erase(N);
      return;
    }
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      freeVarsImpl(A->getFn(), Bound, Out);
      for (const Term *Arg : A->getArgs())
        freeVarsImpl(Arg, Bound, Out);
      return;
    }
    case TermKind::TyAbs:
      freeVarsImpl(cast<TyAbsTerm>(T)->getBody(), Bound, Out);
      return;
    case TermKind::TyApp:
      freeVarsImpl(cast<TyAppTerm>(T)->getFn(), Bound, Out);
      return;
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      freeVarsImpl(L->getInit(), Bound, Out);
      bool Added = Bound.insert(L->getName()).second;
      freeVarsImpl(L->getBody(), Bound, Out);
      if (Added)
        Bound.erase(L->getName());
      return;
    }
    case TermKind::Tuple:
      for (const Term *E : cast<TupleTerm>(T)->getElements())
        freeVarsImpl(E, Bound, Out);
      return;
    case TermKind::Nth:
      freeVarsImpl(cast<NthTerm>(T)->getTuple(), Bound, Out);
      return;
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      freeVarsImpl(I->getCond(), Bound, Out);
      freeVarsImpl(I->getThen(), Bound, Out);
      freeVarsImpl(I->getElse(), Bound, Out);
      return;
    }
    case TermKind::Fix:
      freeVarsImpl(cast<FixTerm>(T)->getOperand(), Bound, Out);
      return;
    }
  }

  static std::unordered_set<std::string> freeVars(const Term *T) {
    std::unordered_set<std::string> Bound, Out;
    freeVarsImpl(T, Bound, Out);
    return Out;
  }

  static unsigned countOccurrences(const Term *T, const std::string &Name) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
      return 0;
    case TermKind::Var:
      return cast<VarTerm>(T)->getName() == Name ? 1 : 0;
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        if (P.Name == Name)
          return 0; // Shadowed.
      return countOccurrences(A->getBody(), Name);
    }
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      unsigned N = countOccurrences(A->getFn(), Name);
      for (const Term *Arg : A->getArgs())
        N += countOccurrences(Arg, Name);
      return N;
    }
    case TermKind::TyAbs:
      return countOccurrences(cast<TyAbsTerm>(T)->getBody(), Name);
    case TermKind::TyApp:
      return countOccurrences(cast<TyAppTerm>(T)->getFn(), Name);
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      unsigned N = countOccurrences(L->getInit(), Name);
      if (L->getName() != Name)
        N += countOccurrences(L->getBody(), Name);
      return N;
    }
    case TermKind::Tuple: {
      unsigned N = 0;
      for (const Term *E : cast<TupleTerm>(T)->getElements())
        N += countOccurrences(E, Name);
      return N;
    }
    case TermKind::Nth:
      return countOccurrences(cast<NthTerm>(T)->getTuple(), Name);
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      return countOccurrences(I->getCond(), Name) +
             countOccurrences(I->getThen(), Name) +
             countOccurrences(I->getElse(), Name);
    }
    case TermKind::Fix:
      return countOccurrences(cast<FixTerm>(T)->getOperand(), Name);
    }
    return 0;
  }

  //===--------------------------------------------------------------===//
  // Type substitution inside terms (for TyApp inlining)
  //===--------------------------------------------------------------===//

  const Term *substTypes(const Term *T, const TypeSubst &S) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      std::vector<ParamBinding> Params;
      bool Changed = false;
      for (const ParamBinding &P : A->getParams()) {
        const Type *NT = Ctx.substitute(P.Ty, S);
        Changed |= NT != P.Ty;
        Params.push_back({P.Name, NT});
      }
      const Term *Body = substTypes(A->getBody(), S);
      if (!Changed && Body == A->getBody())
        return T;
      return Arena.makeAbs(std::move(Params), Body);
    }
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const Term *Fn = substTypes(A->getFn(), S);
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = substTypes(Arg, S);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }
    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      for ([[maybe_unused]] const TypeParamDecl &P : A->getParams())
        assert(!S.count(P.Id) && "type substitution would capture");
      const Term *Body = substTypes(A->getBody(), S);
      return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
    }
    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = substTypes(A->getFn(), S);
      std::vector<const Type *> Args;
      bool Changed = Fn != A->getFn();
      for (const Type *Arg : A->getTypeArgs()) {
        const Type *NA = Ctx.substitute(Arg, S);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      return Changed ? Arena.makeTyApp(Fn, std::move(Args)) : T;
    }
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = substTypes(L->getInit(), S);
      const Term *Body = substTypes(L->getBody(), S);
      if (Init == L->getInit() && Body == L->getBody())
        return T;
      return Arena.makeLet(L->getName(), Init, Body);
    }
    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = substTypes(E, S);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }
    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = substTypes(N->getTuple(), S);
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = substTypes(I->getCond(), S);
      const Term *Th = substTypes(I->getThen(), S);
      const Term *El = substTypes(I->getElse(), S);
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }
    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = substTypes(F->getOperand(), S);
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  //===--------------------------------------------------------------===//
  // Capture-avoiding term substitution (for let/beta inlining)
  //===--------------------------------------------------------------===//

  std::string freshName(const std::string &Base) {
    return Base + "$r" + std::to_string(NextRename++);
  }

  /// Substitutes \p Value for free occurrences of \p Name in \p T.
  /// \p ValueFree are the free variables of \p Value; any binder along
  /// the way that would capture one of them is alpha-renamed first.
  const Term *substVar(const Term *T, const std::string &Name,
                       const Term *Value,
                       const std::unordered_set<std::string> &ValueFree) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
      return T;
    case TermKind::Var:
      return cast<VarTerm>(T)->getName() == Name ? Value : T;
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        if (P.Name == Name)
          return T; // Shadowed: substitution stops here.
      // Rename parameters that would capture free variables of Value.
      // Walk the parameter list back to front: with duplicate names the
      // *last* binding owns the body occurrences (evaluation binds
      // sequentially, later shadowing earlier), so it must be renamed
      // first, leaving nothing for the earlier duplicates to capture.
      std::vector<ParamBinding> Params(A->getParams());
      const Term *Body = A->getBody();
      for (size_t I = Params.size(); I-- != 0;) {
        ParamBinding &P = Params[I];
        if (!ValueFree.count(P.Name))
          continue;
        std::string NewName = freshName(P.Name);
        Body = substVar(Body, P.Name, Arena.makeVar(NewName), {});
        P.Name = NewName;
      }
      const Term *NewBody = substVar(Body, Name, Value, ValueFree);
      if (NewBody == A->getBody() && Body == A->getBody())
        return T;
      return Arena.makeAbs(std::move(Params), NewBody);
    }
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const Term *Fn = substVar(A->getFn(), Name, Value, ValueFree);
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = substVar(Arg, Name, Value, ValueFree);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }
    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = substVar(A->getBody(), Name, Value, ValueFree);
      return Body == A->getBody() ? T
                                  : Arena.makeTyAbs(A->getParams(), Body);
    }
    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = substVar(A->getFn(), Name, Value, ValueFree);
      return Fn == A->getFn() ? T
                              : Arena.makeTyApp(Fn, A->getTypeArgs());
    }
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = substVar(L->getInit(), Name, Value, ValueFree);
      if (L->getName() == Name) {
        // Shadowed in the body.
        return Init == L->getInit()
                   ? T
                   : Arena.makeLet(L->getName(), Init, L->getBody());
      }
      std::string BoundName = L->getName();
      const Term *Body = L->getBody();
      if (ValueFree.count(BoundName)) {
        std::string NewName = freshName(BoundName);
        Body = substVar(Body, BoundName, Arena.makeVar(NewName), {});
        BoundName = NewName;
      }
      const Term *NewBody = substVar(Body, Name, Value, ValueFree);
      if (Init == L->getInit() && NewBody == L->getBody() &&
          BoundName == L->getName())
        return T;
      return Arena.makeLet(BoundName, Init, NewBody);
    }
    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = substVar(E, Name, Value, ValueFree);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }
    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = substVar(N->getTuple(), Name, Value, ValueFree);
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = substVar(I->getCond(), Name, Value, ValueFree);
      const Term *Th = substVar(I->getThen(), Name, Value, ValueFree);
      const Term *El = substVar(I->getElse(), Name, Value, ValueFree);
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }
    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = substVar(F->getOperand(), Name, Value, ValueFree);
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  //===--------------------------------------------------------------===//
  // The rewrite pass (bottom-up, one simplification round; Mask selects
  // which of the named passes' rewrites fire)
  //===--------------------------------------------------------------===//

  const Term *rewrite(const Term *T) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;

    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      const Term *Body = rewrite(A->getBody());
      return Body == A->getBody() ? T
                                  : Arena.makeAbs(A->getParams(), Body);
    }

    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const Term *Fn = rewrite(A->getFn());
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = rewrite(Arg);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      // Beta-reduce (fun(x...). body)(v...) for pure arguments — the
      // dictionary application exposed by TyApp inlining.
      if (const auto *Abs = dyn_cast<AbsTerm>(Fn);
          Abs && (Mask & PassBetaInline)) {
        bool AllPure = Abs->getParams().size() == Args.size();
        for (const Term *Arg : Args)
          AllPure &= isPure(Arg);
        if (AllPure) {
          // Rename all parameters to fresh names first so sequential
          // substitution is equivalent to simultaneous substitution.
          // Rename back to front: with duplicate parameter names the
          // body occurrences belong to the *last* duplicate (evaluation
          // binds left to right, later shadowing earlier), so it must
          // claim them before the earlier duplicates are renamed.
          const Term *Body = Abs->getBody();
          std::vector<std::string> Fresh(Abs->getParams().size());
          for (size_t I = Abs->getParams().size(); I-- != 0;) {
            const ParamBinding &P = Abs->getParams()[I];
            std::string NewName = freshName(P.Name);
            Body = substVar(Body, P.Name, Arena.makeVar(NewName), {});
            Fresh[I] = std::move(NewName);
          }
          for (size_t I = 0; I != Args.size(); ++I)
            Body = substVar(Body, Fresh[I], Args[I], freeVars(Args[I]));
          ++Stats.LetsInlined;
          return Body;
        }
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }

    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = rewrite(A->getBody());
      return Body == A->getBody() ? T
                                  : Arena.makeTyAbs(A->getParams(), Body);
    }

    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = rewrite(A->getFn());
      // Instantiate a known type abstraction (the C++ model).
      if (const auto *TA = dyn_cast<TyAbsTerm>(Fn);
          TA && (Mask & PassInstantiate)) {
        if (TA->getParams().size() == A->getTypeArgs().size()) {
          TypeSubst S;
          for (size_t I = 0; I != TA->getParams().size(); ++I)
            S[TA->getParams()[I].Id] = A->getTypeArgs()[I];
          ++Stats.TypeAppsInlined;
          return substTypes(TA->getBody(), S);
        }
      }
      return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
    }

    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = rewrite(L->getInit());
      const Term *Body = rewrite(L->getBody());
      if ((Mask & PassInlineLets) && isPure(Init)) {
        unsigned N = countOccurrences(Body, L->getName());
        if (N == 0) {
          ++Stats.DeadLetsRemoved;
          return Body;
        }
        size_t InitSize = countTermNodes(Init);
        bool FitsBudget =
            N == 1 || InitSize <= 8 ||
            countTermNodes(Body) + (N - 1) * InitSize <= Budget;
        if (FitsBudget) {
          ++Stats.LetsInlined;
          return substVar(Body, L->getName(), Init, freeVars(Init));
        }
      }
      if (Init == L->getInit() && Body == L->getBody())
        return T;
      return Arena.makeLet(L->getName(), Init, Body);
    }

    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = rewrite(E);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }

    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = rewrite(N->getTuple());
      // Fold `nth (e0, ..., en) i` when dropping the other elements is
      // safe (all pure) — compiled member access collapses this way.
      if (const auto *Lit = dyn_cast<TupleTerm>(Tu);
          Lit && (Mask & PassFold)) {
        if (N->getIndex() < Lit->getElements().size()) {
          bool AllPure = true;
          for (const Term *E : Lit->getElements())
            AllPure &= isPure(E);
          if (AllPure) {
            ++Stats.ProjectionsFolded;
            return Lit->getElements()[N->getIndex()];
          }
        }
      }
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }

    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = rewrite(I->getCond());
      const Term *Th = rewrite(I->getThen());
      const Term *El = rewrite(I->getElse());
      // Constant-fold a literal condition.
      if (const auto *B = dyn_cast<BoolLit>(C); B && (Mask & PassFold))
        return B->getValue() ? Th : El;
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }

    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = rewrite(F->getOperand());
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  TermArena &Arena;
  TypeContext &Ctx;
  const OptimizeOptions &Opts;
  OptimizeStats &Stats;
  size_t Budget = 0;
  unsigned NextRename = 0;
  unsigned Mask = ~0u; ///< Rewrites enabled in the current pass.
};

} // namespace

const std::vector<const char *> &fg::sf::optimizePassNames() {
  static const std::vector<const char *> Names = [] {
    std::vector<const char *> N;
    for (const PassDesc &P : Pipeline)
      N.push_back(P.Name);
    return N;
  }();
  return Names;
}

const Term *fg::sf::specialize(TermArena &Arena, TypeContext &Ctx,
                               const Term *T, const OptimizeOptions &Opts,
                               OptimizeStats *Stats) {
  fg::stats::ScopedTimer Timer("optimize.specialize");
  OptimizeStats Local;
  OptimizeStats &Out = Stats ? *Stats : Local;
  Specializer S(Arena, Ctx, Opts, Out);
  const Term *Result = S.run(T);
  fg::stats::Statistics &G = fg::stats::Statistics::global();
  G.add("optimize.typeapps_inlined", Out.TypeAppsInlined);
  G.add("optimize.lets_inlined", Out.LetsInlined);
  G.add("optimize.projections_folded", Out.ProjectionsFolded);
  G.add("optimize.dead_lets_removed", Out.DeadLetsRemoved);
  return Result;
}
