//===- systemf/TypeCheck.cpp - System F typechecker -----------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/TypeCheck.h"
#include <cassert>
#include <sstream>

using namespace fg;
using namespace fg::sf;

const Type *TypeChecker::check(const Term *T, const TypeEnv &InitialEnv) {
  Env = InitialEnv;
  ParamsInScope.clear();
  Errors.clear();
  return checkTerm(T);
}

const Type *TypeChecker::fail(const Term *At, std::string Message) {
  std::ostringstream OS;
  OS << Message;
  if (At)
    OS << " in `" << termToString(At) << '`';
  Errors.push_back(OS.str());
  return nullptr;
}

/// Verifies that every free type parameter of \p T is in scope.
bool TypeChecker::checkWellFormed(const Type *T, const Term *At) {
  std::unordered_set<unsigned> Free;
  Ctx.collectFreeParams(T, Free);
  for (unsigned Id : Free) {
    if (!ParamsInScope.count(Id)) {
      fail(At, "type `" + typeToString(T) +
                   "` mentions a type parameter that is not in scope");
      return false;
    }
  }
  return true;
}

const Type *TypeChecker::checkTerm(const Term *T) {
  switch (T->getKind()) {
  case TermKind::IntLit:
    return Ctx.getIntType();
  case TermKind::BoolLit:
    return Ctx.getBoolType();

  case TermKind::Var: {
    const auto *V = cast<VarTerm>(T);
    if (const Type *Ty = Env.lookup(V->getName()))
      return Ty;
    return fail(T, "unbound variable `" + V->getName() + "`");
  }

  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    size_t Saved = Env.size();
    std::vector<const Type *> ParamTys;
    ParamTys.reserve(A->getParams().size());
    for (const ParamBinding &P : A->getParams()) {
      if (!checkWellFormed(P.Ty, T))
        return nullptr;
      Env.bind(P.Name, P.Ty);
      ParamTys.push_back(P.Ty);
    }
    const Type *BodyTy = checkTerm(A->getBody());
    Env.truncate(Saved);
    if (!BodyTy)
      return nullptr;
    return Ctx.getArrowType(std::move(ParamTys), BodyTy);
  }

  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    const Type *FnTy = checkTerm(A->getFn());
    if (!FnTy)
      return nullptr;
    const auto *Arrow = dyn_cast<ArrowType>(FnTy);
    if (!Arrow)
      return fail(T, "applied expression has non-function type `" +
                         typeToString(FnTy) + "`");
    if (Arrow->getNumParams() != A->getArgs().size())
      return fail(T, "function expects " +
                         std::to_string(Arrow->getNumParams()) +
                         " argument(s) but " +
                         std::to_string(A->getArgs().size()) +
                         " were supplied");
    for (unsigned I = 0, E = A->getArgs().size(); I != E; ++I) {
      const Type *ArgTy = checkTerm(A->getArgs()[I]);
      if (!ArgTy)
        return nullptr;
      // Hash-consing makes alpha-equivalence a pointer comparison.
      if (ArgTy != Arrow->getParams()[I])
        return fail(T, "argument " + std::to_string(I + 1) + " has type `" +
                           typeToString(ArgTy) + "` but `" +
                           typeToString(Arrow->getParams()[I]) +
                           "` was expected");
    }
    return Arrow->getResult();
  }

  case TermKind::TyAbs: {
    const auto *A = cast<TyAbsTerm>(T);
    for (const TypeParamDecl &P : A->getParams()) {
      if (ParamsInScope.count(P.Id))
        return fail(T, "type parameter `" + P.Name + "` is already in scope");
      ParamsInScope.insert(P.Id);
    }
    const Type *BodyTy = checkTerm(A->getBody());
    for (const TypeParamDecl &P : A->getParams())
      ParamsInScope.erase(P.Id);
    if (!BodyTy)
      return nullptr;
    return Ctx.getForAllType(A->getParams(), BodyTy);
  }

  case TermKind::TyApp: {
    const auto *A = cast<TyAppTerm>(T);
    const Type *FnTy = checkTerm(A->getFn());
    if (!FnTy)
      return nullptr;
    const auto *FA = dyn_cast<ForAllType>(FnTy);
    if (!FA)
      return fail(T, "type application of non-polymorphic expression of "
                     "type `" +
                         typeToString(FnTy) + "`");
    if (FA->getNumParams() != A->getTypeArgs().size())
      return fail(T, "expected " + std::to_string(FA->getNumParams()) +
                         " type argument(s) but got " +
                         std::to_string(A->getTypeArgs().size()));
    TypeSubst Subst;
    for (unsigned I = 0, E = FA->getNumParams(); I != E; ++I) {
      if (!checkWellFormed(A->getTypeArgs()[I], T))
        return nullptr;
      Subst[FA->getParams()[I].Id] = A->getTypeArgs()[I];
    }
    return Ctx.substitute(FA->getBody(), Subst);
  }

  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    const Type *InitTy = checkTerm(L->getInit());
    if (!InitTy)
      return nullptr;
    size_t Saved = Env.size();
    Env.bind(L->getName(), InitTy);
    const Type *BodyTy = checkTerm(L->getBody());
    Env.truncate(Saved);
    return BodyTy;
  }

  case TermKind::Tuple: {
    const auto *Tu = cast<TupleTerm>(T);
    std::vector<const Type *> Elems;
    Elems.reserve(Tu->getElements().size());
    for (const Term *E : Tu->getElements()) {
      const Type *Ty = checkTerm(E);
      if (!Ty)
        return nullptr;
      Elems.push_back(Ty);
    }
    return Ctx.getTupleType(std::move(Elems));
  }

  case TermKind::Nth: {
    const auto *N = cast<NthTerm>(T);
    const Type *TupleTy = checkTerm(N->getTuple());
    if (!TupleTy)
      return nullptr;
    const auto *Tu = dyn_cast<TupleType>(TupleTy);
    if (!Tu)
      return fail(T, "`nth` applied to non-tuple type `" +
                         typeToString(TupleTy) + "`");
    if (N->getIndex() >= Tu->getNumElements())
      return fail(T, "tuple index " + std::to_string(N->getIndex()) +
                         " out of range for `" + typeToString(TupleTy) + "`");
    return Tu->getElement(N->getIndex());
  }

  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    const Type *CondTy = checkTerm(I->getCond());
    if (!CondTy)
      return nullptr;
    if (CondTy != Ctx.getBoolType())
      return fail(T, "`if` condition has type `" + typeToString(CondTy) +
                         "` but `bool` was expected");
    const Type *ThenTy = checkTerm(I->getThen());
    const Type *ElseTy = checkTerm(I->getElse());
    if (!ThenTy || !ElseTy)
      return nullptr;
    if (ThenTy != ElseTy)
      return fail(T, "`if` branches have different types `" +
                         typeToString(ThenTy) + "` and `" +
                         typeToString(ElseTy) + "`");
    return ThenTy;
  }

  case TermKind::Fix: {
    const auto *F = cast<FixTerm>(T);
    const Type *OpTy = checkTerm(F->getOperand());
    if (!OpTy)
      return nullptr;
    // fix e : sigma  when  e : fn(sigma) -> sigma  and sigma is a
    // function type (the call-by-value restriction).
    const auto *Arrow = dyn_cast<ArrowType>(OpTy);
    if (!Arrow || Arrow->getNumParams() != 1 ||
        Arrow->getParams()[0] != Arrow->getResult())
      return fail(T, "`fix` operand must have type `fn(s) -> s`, got `" +
                         typeToString(OpTy) + "`");
    if (!isa<ArrowType>(Arrow->getResult()))
      return fail(T, "`fix` is restricted to function types, got `" +
                         typeToString(Arrow->getResult()) + "`");
    return Arrow->getResult();
  }
  }
  assert(false && "unknown term kind");
  return nullptr;
}
