//===- systemf/Specialize.h - Whole-program specialization ------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggressive (-O2) specialization passes layered on top of the
/// baseline optimizer pipeline in Optimize.cpp.  Where the baseline
/// passes only reduce redexes that are already syntactically adjacent
/// (TyApp of TyAbs, App of Abs, projection of a literal tuple), these
/// passes recover C++-template-style monomorphization from the
/// dictionary-passing translation even when the redex is hidden behind
/// a binding:
///
///   * specialize-tyapps clones a let-bound type abstraction at each
///     concrete type-argument vector it is applied to, sharing clones
///     through a per-run cache keyed on (function, type-args);
///   * devirtualize-dicts propagates the element-wise shape of known
///     dictionary records through let/app chains and rewrites member
///     projections into direct references to the model's witness;
///   * eliminate-dead-dicts drops dictionary parameters and record
///     fields left unused once the members are devirtualized.
///
/// Each pass is one sharing-preserving traversal and is run as a named
/// pass of the Optimize.cpp pipeline, so the PR-4 translation validator
/// re-typechecks every one of its outputs.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_SPECIALIZE_H
#define FG_SYSTEMF_SPECIALIZE_H

#include "systemf/Term.h"
#include "systemf/Type.h"
#include <cstddef>
#include <string>
#include <unordered_set>

namespace fg {
namespace sf {

/// How much of the specialization pipeline runs.  Levels are cumulative:
/// each one enables everything below it.
enum class SpecializeLevel {
  Off,   ///< Baseline pipeline only (-O1).
  Apps,  ///< + specialize-tyapps.
  Dicts, ///< + devirtualize-dicts.
  Full,  ///< + eliminate-dead-dicts (-O2).
};

/// Parses "off" / "apps" / "dicts" / "full".  Returns false on anything
/// else, leaving \p Level untouched.
bool parseSpecializeLevel(const std::string &Text, SpecializeLevel &Level);

/// The flag spelling of \p Level ("off", "apps", "dicts", "full").
const char *specializeLevelName(SpecializeLevel Level);

/// Counters the specialization passes maintain; the pipeline copies
/// them into OptimizeStats after a run.
struct SpecializeCounters {
  unsigned ClonesCreated = 0;        ///< Specialized function copies made.
  unsigned CacheHits = 0;            ///< Re-used an existing clone.
  unsigned MembersDevirtualized = 0; ///< MEM projections rewritten.
  unsigned LetBetaExpansions = 0;    ///< App-of-Abs turned into lets.
  unsigned DictParamsEliminated = 0; ///< Dead dictionary params dropped.
  unsigned DictFieldsEliminated = 0; ///< Dead record fields dropped.
  unsigned BudgetHits = 0;           ///< Specializations declined by budget.
};

/// The stateful pass object.  One instance lives for a whole pipeline
/// run so fresh-name counters never collide across iterations, while
/// the specialization cache is rebuilt per pass invocation (clone lets
/// from a previous iteration may since have been inlined or removed, so
/// cached names must not outlive the term they were minted for).
class SpecializePasses {
public:
  /// \p HoistableTyApps names the variables (in practice: the prelude
  /// builtins) whose type applications may be hoisted to one top-level
  /// anchor per instantiation.  Null disables hoisting.
  SpecializePasses(TermArena &Arena, TypeContext &Ctx,
                   const std::unordered_set<std::string> *HoistableTyApps);
  ~SpecializePasses();

  SpecializePasses(const SpecializePasses &) = delete;
  SpecializePasses &operator=(const SpecializePasses &) = delete;

  /// Clones let-bound type abstractions at concrete argument vectors.
  /// \p NodeBudget bounds the total size of new clone bodies this run;
  /// \p MaxTypeArgSize bounds the summed size of one application's type
  /// arguments (the blow-up guard for nested instantiation chains).
  const Term *runTypeAppSpecialize(const Term *T, size_t NodeBudget,
                                   size_t MaxTypeArgSize);

  /// Propagates dictionary shapes and rewrites member projections.
  const Term *runDevirtualizeDicts(const Term *T);

  /// Drops dictionary parameters and record fields proven dead.
  const Term *runEliminateDeadDicts(const Term *T);

  SpecializeCounters &counters() { return Counters; }

private:
  TermArena &Arena;
  TypeContext &Ctx;
  const std::unordered_set<std::string> *Hoistable;
  SpecializeCounters Counters;
  /// Fresh-name counters, monotonic across the whole pipeline run.
  unsigned NextCloneId = 0;  ///< "$s" — specialized clones and anchors.
  unsigned NextAnchorId = 0; ///< "$a" — dictionary element anchors.
  unsigned NextBetaId = 0;   ///< "$b" — let-beta parameter bindings.
  unsigned NextRename = 0;   ///< "$v" — capture-avoidance renames.
};

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_SPECIALIZE_H
