//===- systemf/Type.h - System F types --------------------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of System F, the translation target of F_G (paper Figure 2):
///
///   sigma, tau ::= t | fn(tau...) -> tau | tau x ... x tau | forall t. tau
///
/// extended with the base types int and bool and the builtin `list`
/// constructor, which the paper's example programs use freely (Figure 3).
///
/// All types are hash-consed by a TypeContext.  Quantified types bind
/// parameters with globally unique ids, and the interner compares and
/// hashes modulo alpha-equivalence, so *pointer equality coincides with
/// alpha-equivalence* everywhere in the compiler.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_TYPE_H
#define FG_SYSTEMF_TYPE_H

#include "support/Casting.h"
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fg {
namespace sf {

class TypeContext;

/// Discriminator for the Type hierarchy.
enum class TypeKind : uint8_t {
  Int,
  Bool,
  Param,
  Arrow,
  Tuple,
  List,
  ForAll,
};

/// A quantified type parameter: globally unique id plus a display name.
struct TypeParamDecl {
  unsigned Id;
  std::string Name;

  friend bool operator==(const TypeParamDecl &A, const TypeParamDecl &B) {
    return A.Id == B.Id;
  }
};

/// Base class of all System F types.  Instances are immutable and owned
/// by a TypeContext; never allocate one directly.
class Type {
public:
  TypeKind getKind() const { return Kind; }

  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;
  virtual ~Type() = default;

protected:
  explicit Type(TypeKind K) : Kind(K) {}

private:
  friend class TypeContext;
  TypeKind Kind;
};

/// The base type of machine integers.
class IntType : public Type {
public:
  static bool classof(const Type *T) { return T->getKind() == TypeKind::Int; }

private:
  friend class TypeContext;
  IntType() : Type(TypeKind::Int) {}
};

/// The base type of booleans.
class BoolType : public Type {
public:
  static bool classof(const Type *T) { return T->getKind() == TypeKind::Bool; }

private:
  friend class TypeContext;
  BoolType() : Type(TypeKind::Bool) {}
};

/// A reference to a quantified type parameter.
class ParamType : public Type {
public:
  unsigned getId() const { return Id; }
  const std::string &getName() const { return Name; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Param;
  }

private:
  friend class TypeContext;
  ParamType(unsigned Id, std::string Name)
      : Type(TypeKind::Param), Id(Id), Name(std::move(Name)) {}

  unsigned Id;
  std::string Name;
};

/// A (possibly multi-parameter) function type fn(tau...) -> tau.
class ArrowType : public Type {
public:
  const std::vector<const Type *> &getParams() const { return Params; }
  const Type *getResult() const { return Result; }
  unsigned getNumParams() const { return Params.size(); }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Arrow;
  }

private:
  friend class TypeContext;
  ArrowType(std::vector<const Type *> Params, const Type *Result)
      : Type(TypeKind::Arrow), Params(std::move(Params)), Result(Result) {}

  std::vector<const Type *> Params;
  const Type *Result;
};

/// A tuple type tau1 x ... x taun.  Dictionaries are tuples (Figure 7).
class TupleType : public Type {
public:
  const std::vector<const Type *> &getElements() const { return Elements; }
  unsigned getNumElements() const { return Elements.size(); }
  const Type *getElement(unsigned I) const { return Elements[I]; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Tuple;
  }

private:
  friend class TypeContext;
  explicit TupleType(std::vector<const Type *> Elements)
      : Type(TypeKind::Tuple), Elements(std::move(Elements)) {}

  std::vector<const Type *> Elements;
};

/// The builtin homogeneous list constructor `list tau`.
class ListType : public Type {
public:
  const Type *getElement() const { return Element; }

  static bool classof(const Type *T) { return T->getKind() == TypeKind::List; }

private:
  friend class TypeContext;
  explicit ListType(const Type *Element)
      : Type(TypeKind::List), Element(Element) {}

  const Type *Element;
};

/// A universally quantified type: forall t... . tau.
class ForAllType : public Type {
public:
  const std::vector<TypeParamDecl> &getParams() const { return Params; }
  unsigned getNumParams() const { return Params.size(); }
  const Type *getBody() const { return Body; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::ForAll;
  }

private:
  friend class TypeContext;
  ForAllType(std::vector<TypeParamDecl> Params, const Type *Body)
      : Type(TypeKind::ForAll), Params(std::move(Params)), Body(Body) {}

  std::vector<TypeParamDecl> Params;
  const Type *Body;
};

/// Map from type parameter ids to replacement types.
using TypeSubst = std::unordered_map<unsigned, const Type *>;

/// Owns and hash-conses all types.  Pointer equality on the returned
/// nodes is alpha-equivalence.
class TypeContext {
public:
  TypeContext();
  ~TypeContext();

  const Type *getIntType() const { return IntTy; }
  const Type *getBoolType() const { return BoolTy; }
  const Type *getParamType(unsigned Id, const std::string &Name);
  const Type *getArrowType(std::vector<const Type *> Params,
                           const Type *Result);
  const Type *getTupleType(std::vector<const Type *> Elements);
  const Type *getListType(const Type *Element);
  const Type *getForAllType(std::vector<TypeParamDecl> Params,
                            const Type *Body);

  /// Returns a fresh, never-before-used type parameter id.
  unsigned freshParamId() { return NextParamId++; }

  /// Returns a fresh parameter type with a new id, named \p Name.
  const Type *freshParam(const std::string &Name) {
    return getParamType(freshParamId(), Name);
  }

  /// Capture-avoiding substitution of parameter ids for types.
  /// Binder ids are globally unique and checker-opened binders are always
  /// fresh, so no renaming is ever required; this is asserted.
  const Type *substitute(const Type *T, const TypeSubst &Subst);

  /// Collects the free parameter ids of \p T into \p Out.
  void collectFreeParams(const Type *T,
                         std::unordered_set<unsigned> &Out) const;

  unsigned getNumInternedTypes() const { return Uniq.size(); }

private:
  const Type *intern(Type *Candidate);

  struct Hash {
    size_t operator()(const Type *T) const;
  };
  struct AlphaEq {
    bool operator()(const Type *A, const Type *B) const;
  };

  const Type *IntTy;
  const Type *BoolTy;
  std::unordered_set<const Type *, Hash, AlphaEq> Uniq;
  std::deque<std::unique_ptr<Type>> Owned;
  unsigned NextParamId = 0;
};

/// Renders \p T in the paper's concrete syntax, e.g.
/// "forall t. fn(list t, fn(t, t) -> t, t) -> t".
std::string typeToString(const Type *T);

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_TYPE_H
