//===- systemf/Value.h - Runtime values for System F ------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime representation for the call-by-value System F evaluator.
/// Dictionaries produced by the F_G translation are ordinary tuple
/// values here — exactly the representation drawn in the paper's
/// Figure 7.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_VALUE_H
#define FG_SYSTEMF_VALUE_H

#include "support/Casting.h"
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fg {
namespace sf {

class AbsTerm;
class TyAbsTerm;
class Value;

using ValuePtr = std::shared_ptr<const Value>;

/// Live-object gauges for the interpreter heap (values and environment
/// nodes).  Maintained with relaxed atomics in the constructors and
/// destructors below, and surfaced by fgcd as `server.arena.*` so
/// long-lived daemon sessions can prove that reset returns them to
/// baseline.  Interned constants (small ints, booleans, nil) are part
/// of the baseline: they are allocated once and never die.
std::atomic<int64_t> &liveValueGauge();
std::atomic<int64_t> &liveEnvNodeGauge();

/// A persistent (immutable, shared-tail) runtime environment.
struct EnvNode {
  std::string Name;
  ValuePtr Val;
  std::shared_ptr<const EnvNode> Next;

  EnvNode() { liveEnvNodeGauge().fetch_add(1, std::memory_order_relaxed); }
  EnvNode(const EnvNode &) = delete;
  EnvNode &operator=(const EnvNode &) = delete;

  /// Environments are shared-tail spines like lists: a deep chain dying
  /// all at once must not recurse through ~shared_ptr.  Steal the tail
  /// hand-over-hand — each uniquely-owned node has its Next nulled
  /// before it dies, so destruction is iterative.  (use_count() == 1
  /// means this thread holds the only reference, so the const_cast
  /// mutation is unobservable.)
  ~EnvNode() {
    liveEnvNodeGauge().fetch_sub(1, std::memory_order_relaxed);
    std::shared_ptr<const EnvNode> N = std::move(Next);
    while (N && N.use_count() == 1) {
      std::shared_ptr<const EnvNode> Nx =
          std::move(const_cast<EnvNode &>(*N).Next);
      N = std::move(Nx);
    }
  }
};
using EnvPtr = std::shared_ptr<const EnvNode>;

/// Extends \p Env with a binding of \p Name to \p Val.
inline EnvPtr envBind(EnvPtr Env, std::string Name, ValuePtr Val) {
  auto Node = std::make_shared<EnvNode>();
  Node->Name = std::move(Name);
  Node->Val = std::move(Val);
  Node->Next = std::move(Env);
  return Node;
}

/// Returns the value bound to \p Name, or null.
inline ValuePtr envLookup(const EnvPtr &Env, const std::string &Name) {
  for (const EnvNode *N = Env.get(); N; N = N->Next.get())
    if (N->Name == Name)
      return N->Val;
  return nullptr;
}

/// Discriminator for the Value hierarchy.
enum class ValueKind : uint8_t {
  Int,
  Bool,
  Tuple,
  List,
  Closure,
  TyClosure,
  Fix,
  Builtin,
  /// Closures of the closure-compiling engine (systemf/Compile.h);
  /// never observed by the tree-walking evaluator.
  CompiledClosure,
  CompiledTyClosure,
  /// Closures of the bytecode VM (vm/VM.h); the classes live in the vm
  /// library, only the kinds are shared so printing and the foreign-
  /// closure errors of the other engines stay exhaustive.
  VmClosure,
  VmTyClosure,
};

/// Outcome of evaluation: a value or an error message.
struct EvalResult {
  ValuePtr Val;
  std::string Error;

  bool ok() const { return Val != nullptr; }

  static EvalResult success(ValuePtr V) { return {std::move(V), {}}; }
  static EvalResult failure(std::string Message) {
    return {nullptr, std::move(Message)};
  }
};

/// Base class of runtime values.  Values are immutable and shared.
class Value {
public:
  ValueKind getKind() const { return Kind; }

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() { liveValueGauge().fetch_sub(1, std::memory_order_relaxed); }

protected:
  explicit Value(ValueKind K) : Kind(K) {
    liveValueGauge().fetch_add(1, std::memory_order_relaxed);
  }

private:
  ValueKind Kind;
};

class IntValue : public Value {
public:
  explicit IntValue(int64_t V) : Value(ValueKind::Int), Val(V) {}
  int64_t getValue() const { return Val; }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Int; }

private:
  int64_t Val;
};

class BoolValue : public Value {
public:
  explicit BoolValue(bool V) : Value(ValueKind::Bool), Val(V) {}
  bool getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Bool;
  }

private:
  bool Val;
};

class TupleValue : public Value {
public:
  explicit TupleValue(std::vector<ValuePtr> Elements)
      : Value(ValueKind::Tuple), Elements(std::move(Elements)) {}

  /// Deep tuple nests (dictionaries of dictionaries) must not recurse
  /// through element destruction: elements are handed to a thread-local
  /// drain queue that the outermost dying tuple unwinds in a loop.
  /// See Value.cpp.
  ~TupleValue();

  const std::vector<ValuePtr> &getElements() const { return Elements; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Tuple;
  }

private:
  std::vector<ValuePtr> Elements;
};

/// A cons cell or nil.  Lists share tails so that `cdr` is O(1), as a
/// real runtime would provide.
class ListValue : public Value {
public:
  /// Creates nil.
  ListValue() : Value(ValueKind::List) {}
  /// Creates a cons cell.
  ListValue(ValuePtr Head, std::shared_ptr<const ListValue> Tail)
      : Value(ValueKind::List), Head(std::move(Head)), Tail(std::move(Tail)) {}

  /// A million-element spine dying all at once must not recurse through
  /// ~shared_ptr (the AOT runtime frees spines on an explicit work-list;
  /// this is the interpreter-side equivalent).  Steal the tail
  /// hand-over-hand: each uniquely-owned cell has its Tail nulled before
  /// it dies, so the whole chain unwinds in a loop.  A cell whose
  /// use_count exceeds 1 is shared — releasing it just decrements.
  ~ListValue() {
    std::shared_ptr<const ListValue> T = std::move(Tail);
    while (T && T.use_count() == 1) {
      std::shared_ptr<const ListValue> Next =
          std::move(const_cast<ListValue &>(*T).Tail);
      T = std::move(Next);
    }
  }

  bool isNil() const { return Head == nullptr; }
  const ValuePtr &getHead() const { return Head; }
  const std::shared_ptr<const ListValue> &getTail() const { return Tail; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::List;
  }

private:
  ValuePtr Head;                          ///< Null for nil.
  std::shared_ptr<const ListValue> Tail;  ///< Null for nil.
};

/// A lambda closed over its defining environment.
class ClosureValue : public Value {
public:
  ClosureValue(const AbsTerm *Fn, EnvPtr Env)
      : Value(ValueKind::Closure), Fn(Fn), Env(std::move(Env)) {}
  const AbsTerm *getFn() const { return Fn; }
  const EnvPtr &getEnv() const { return Env; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Closure;
  }

private:
  const AbsTerm *Fn;
  EnvPtr Env;
};

/// A type abstraction closed over its environment; its body is
/// re-evaluated at each type application (types are erased at runtime).
class TyClosureValue : public Value {
public:
  TyClosureValue(const TyAbsTerm *Fn, EnvPtr Env)
      : Value(ValueKind::TyClosure), Fn(Fn), Env(std::move(Env)) {}
  const TyAbsTerm *getFn() const { return Fn; }
  const EnvPtr &getEnv() const { return Env; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::TyClosure;
  }

private:
  const TyAbsTerm *Fn;
  EnvPtr Env;
};

/// The value of `fix f`: applying it unrolls one step of recursion.
class FixValue : public Value {
public:
  explicit FixValue(ValuePtr Fn) : Value(ValueKind::Fix), Fn(std::move(Fn)) {}
  const ValuePtr &getFn() const { return Fn; }

  static bool classof(const Value *V) { return V->getKind() == ValueKind::Fix; }

private:
  ValuePtr Fn;
};

/// A primitive operation implemented in C++ (iadd, cons, ...).
class BuiltinValue : public Value {
public:
  using ImplFn = std::function<EvalResult(const std::vector<ValuePtr> &)>;

  BuiltinValue(std::string Name, unsigned Arity, ImplFn Impl)
      : Value(ValueKind::Builtin), Name(std::move(Name)), Arity(Arity),
        Impl(std::move(Impl)) {}

  const std::string &getName() const { return Name; }
  unsigned getArity() const { return Arity; }
  EvalResult invoke(const std::vector<ValuePtr> &Args) const {
    return Impl(Args);
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Builtin;
  }

private:
  std::string Name;
  unsigned Arity;
  ImplFn Impl;
};

/// Tagged-immediate discipline for the shared_ptr world: ints in a
/// small pooled range, the two booleans, and nil are interned — every
/// engine that boxes one of these gets a shared singleton instead of an
/// allocation.  The pool is allocated once and lives forever, so it is
/// part of the `server.arena.*` baseline.
ValuePtr boxInt(int64_t V);
ValuePtr boxBool(bool B);
/// The canonical empty list.
const std::shared_ptr<const ListValue> &nilList();

/// Renders a value for output: `3`, `true`, `[1, 2]`, `(1, true)`,
/// `<closure>`.
std::string valueToString(const Value *V);
inline std::string valueToString(const ValuePtr &V) {
  return valueToString(V.get());
}

/// Structural equality on first-order values (ints, bools, lists,
/// tuples); functions compare by identity.  Used by tests.
bool valueEquals(const Value *A, const Value *B);
inline bool valueEquals(const ValuePtr &A, const ValuePtr &B) {
  return valueEquals(A.get(), B.get());
}

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_VALUE_H
