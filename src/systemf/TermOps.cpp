//===- systemf/TermOps.cpp - Shared term rewriting utilities --------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/TermOps.h"
#include <cassert>
#include <vector>

using namespace fg;
using namespace fg::sf;

bool fg::sf::isPureTerm(const Term *T) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
  case TermKind::Var:
  case TermKind::Abs:
  case TermKind::TyAbs:
    return true;
  case TermKind::Tuple:
    for (const Term *E : cast<TupleTerm>(T)->getElements())
      if (!isPureTerm(E))
        return false;
    return true;
  case TermKind::Nth:
    return isPureTerm(cast<NthTerm>(T)->getTuple());
  case TermKind::Fix:
    return isPureTerm(cast<FixTerm>(T)->getOperand());
  default:
    return false;
  }
}

namespace {

void freeVarsImpl(const Term *T, std::unordered_set<std::string> &Bound,
                  std::unordered_set<std::string> &Out) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
    return;
  case TermKind::Var: {
    const std::string &N = cast<VarTerm>(T)->getName();
    if (!Bound.count(N))
      Out.insert(N);
    return;
  }
  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    std::vector<std::string> Added;
    for (const ParamBinding &P : A->getParams())
      if (Bound.insert(P.Name).second)
        Added.push_back(P.Name);
    freeVarsImpl(A->getBody(), Bound, Out);
    for (const std::string &N : Added)
      Bound.erase(N);
    return;
  }
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    freeVarsImpl(A->getFn(), Bound, Out);
    for (const Term *Arg : A->getArgs())
      freeVarsImpl(Arg, Bound, Out);
    return;
  }
  case TermKind::TyAbs:
    freeVarsImpl(cast<TyAbsTerm>(T)->getBody(), Bound, Out);
    return;
  case TermKind::TyApp:
    freeVarsImpl(cast<TyAppTerm>(T)->getFn(), Bound, Out);
    return;
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    freeVarsImpl(L->getInit(), Bound, Out);
    bool Added = Bound.insert(L->getName()).second;
    freeVarsImpl(L->getBody(), Bound, Out);
    if (Added)
      Bound.erase(L->getName());
    return;
  }
  case TermKind::Tuple:
    for (const Term *E : cast<TupleTerm>(T)->getElements())
      freeVarsImpl(E, Bound, Out);
    return;
  case TermKind::Nth:
    freeVarsImpl(cast<NthTerm>(T)->getTuple(), Bound, Out);
    return;
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    freeVarsImpl(I->getCond(), Bound, Out);
    freeVarsImpl(I->getThen(), Bound, Out);
    freeVarsImpl(I->getElse(), Bound, Out);
    return;
  }
  case TermKind::Fix:
    freeVarsImpl(cast<FixTerm>(T)->getOperand(), Bound, Out);
    return;
  }
}

} // namespace

std::unordered_set<std::string> fg::sf::freeTermVars(const Term *T) {
  std::unordered_set<std::string> Bound, Out;
  freeVarsImpl(T, Bound, Out);
  return Out;
}

unsigned fg::sf::countVarOccurrences(const Term *T, const std::string &Name) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
    return 0;
  case TermKind::Var:
    return cast<VarTerm>(T)->getName() == Name ? 1 : 0;
  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    for (const ParamBinding &P : A->getParams())
      if (P.Name == Name)
        return 0; // Shadowed.
    return countVarOccurrences(A->getBody(), Name);
  }
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    unsigned N = countVarOccurrences(A->getFn(), Name);
    for (const Term *Arg : A->getArgs())
      N += countVarOccurrences(Arg, Name);
    return N;
  }
  case TermKind::TyAbs:
    return countVarOccurrences(cast<TyAbsTerm>(T)->getBody(), Name);
  case TermKind::TyApp:
    return countVarOccurrences(cast<TyAppTerm>(T)->getFn(), Name);
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    unsigned N = countVarOccurrences(L->getInit(), Name);
    if (L->getName() != Name)
      N += countVarOccurrences(L->getBody(), Name);
    return N;
  }
  case TermKind::Tuple: {
    unsigned N = 0;
    for (const Term *E : cast<TupleTerm>(T)->getElements())
      N += countVarOccurrences(E, Name);
    return N;
  }
  case TermKind::Nth:
    return countVarOccurrences(cast<NthTerm>(T)->getTuple(), Name);
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    return countVarOccurrences(I->getCond(), Name) +
           countVarOccurrences(I->getThen(), Name) +
           countVarOccurrences(I->getElse(), Name);
  }
  case TermKind::Fix:
    return countVarOccurrences(cast<FixTerm>(T)->getOperand(), Name);
  }
  return 0;
}

const Term *fg::sf::substituteTermTypes(TermArena &Arena, TypeContext &Ctx,
                                        const Term *T, const TypeSubst &S) {
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
  case TermKind::Var:
    return T;
  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    std::vector<ParamBinding> Params;
    bool Changed = false;
    for (const ParamBinding &P : A->getParams()) {
      const Type *NT = Ctx.substitute(P.Ty, S);
      Changed |= NT != P.Ty;
      Params.push_back({P.Name, NT});
    }
    const Term *Body = substituteTermTypes(Arena, Ctx, A->getBody(), S);
    if (!Changed && Body == A->getBody())
      return T;
    return Arena.makeAbs(std::move(Params), Body);
  }
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    const Term *Fn = substituteTermTypes(Arena, Ctx, A->getFn(), S);
    std::vector<const Term *> Args;
    bool Changed = Fn != A->getFn();
    for (const Term *Arg : A->getArgs()) {
      const Term *NA = substituteTermTypes(Arena, Ctx, Arg, S);
      Changed |= NA != Arg;
      Args.push_back(NA);
    }
    return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
  }
  case TermKind::TyAbs: {
    const auto *A = cast<TyAbsTerm>(T);
    for ([[maybe_unused]] const TypeParamDecl &P : A->getParams())
      assert(!S.count(P.Id) && "type substitution would capture");
    const Term *Body = substituteTermTypes(Arena, Ctx, A->getBody(), S);
    return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
  }
  case TermKind::TyApp: {
    const auto *A = cast<TyAppTerm>(T);
    const Term *Fn = substituteTermTypes(Arena, Ctx, A->getFn(), S);
    std::vector<const Type *> Args;
    bool Changed = Fn != A->getFn();
    for (const Type *Arg : A->getTypeArgs()) {
      const Type *NA = Ctx.substitute(Arg, S);
      Changed |= NA != Arg;
      Args.push_back(NA);
    }
    return Changed ? Arena.makeTyApp(Fn, std::move(Args)) : T;
  }
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    const Term *Init = substituteTermTypes(Arena, Ctx, L->getInit(), S);
    const Term *Body = substituteTermTypes(Arena, Ctx, L->getBody(), S);
    if (Init == L->getInit() && Body == L->getBody())
      return T;
    return Arena.makeLet(L->getName(), Init, Body);
  }
  case TermKind::Tuple: {
    const auto *Tu = cast<TupleTerm>(T);
    std::vector<const Term *> Elems;
    bool Changed = false;
    for (const Term *E : Tu->getElements()) {
      const Term *NE = substituteTermTypes(Arena, Ctx, E, S);
      Changed |= NE != E;
      Elems.push_back(NE);
    }
    return Changed ? Arena.makeTuple(std::move(Elems)) : T;
  }
  case TermKind::Nth: {
    const auto *N = cast<NthTerm>(T);
    const Term *Tu = substituteTermTypes(Arena, Ctx, N->getTuple(), S);
    return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
  }
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    const Term *C = substituteTermTypes(Arena, Ctx, I->getCond(), S);
    const Term *Th = substituteTermTypes(Arena, Ctx, I->getThen(), S);
    const Term *El = substituteTermTypes(Arena, Ctx, I->getElse(), S);
    if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
      return T;
    return Arena.makeIf(C, Th, El);
  }
  case TermKind::Fix: {
    const auto *F = cast<FixTerm>(T);
    const Term *Op = substituteTermTypes(Arena, Ctx, F->getOperand(), S);
    return Op == F->getOperand() ? T : Arena.makeFix(Op);
  }
  }
  return T;
}

const Term *
fg::sf::substituteTermVar(TermArena &Arena, const Term *T,
                          const std::string &Name, const Term *Value,
                          const std::unordered_set<std::string> &ValueFree,
                          unsigned &RenameCounter, const char *Suffix) {
  auto Fresh = [&](const std::string &Base) {
    return Base + Suffix + std::to_string(RenameCounter++);
  };
  switch (T->getKind()) {
  case TermKind::IntLit:
  case TermKind::BoolLit:
    return T;
  case TermKind::Var:
    return cast<VarTerm>(T)->getName() == Name ? Value : T;
  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    for (const ParamBinding &P : A->getParams())
      if (P.Name == Name)
        return T; // Shadowed: substitution stops here.
    // Rename parameters that would capture free variables of Value.
    // Walk the parameter list back to front: with duplicate names the
    // *last* binding owns the body occurrences (evaluation binds
    // sequentially, later shadowing earlier), so it must be renamed
    // first, leaving nothing for the earlier duplicates to capture.
    std::vector<ParamBinding> Params(A->getParams());
    const Term *Body = A->getBody();
    for (size_t I = Params.size(); I-- != 0;) {
      ParamBinding &P = Params[I];
      if (!ValueFree.count(P.Name))
        continue;
      std::string NewName = Fresh(P.Name);
      Body = substituteTermVar(Arena, Body, P.Name, Arena.makeVar(NewName),
                               {}, RenameCounter, Suffix);
      P.Name = NewName;
    }
    const Term *NewBody =
        substituteTermVar(Arena, Body, Name, Value, ValueFree, RenameCounter,
                          Suffix);
    if (NewBody == A->getBody() && Body == A->getBody())
      return T;
    return Arena.makeAbs(std::move(Params), NewBody);
  }
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    const Term *Fn = substituteTermVar(Arena, A->getFn(), Name, Value,
                                       ValueFree, RenameCounter, Suffix);
    std::vector<const Term *> Args;
    bool Changed = Fn != A->getFn();
    for (const Term *Arg : A->getArgs()) {
      const Term *NA = substituteTermVar(Arena, Arg, Name, Value, ValueFree,
                                         RenameCounter, Suffix);
      Changed |= NA != Arg;
      Args.push_back(NA);
    }
    return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
  }
  case TermKind::TyAbs: {
    const auto *A = cast<TyAbsTerm>(T);
    const Term *Body = substituteTermVar(Arena, A->getBody(), Name, Value,
                                         ValueFree, RenameCounter, Suffix);
    return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
  }
  case TermKind::TyApp: {
    const auto *A = cast<TyAppTerm>(T);
    const Term *Fn = substituteTermVar(Arena, A->getFn(), Name, Value,
                                       ValueFree, RenameCounter, Suffix);
    return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
  }
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    const Term *Init = substituteTermVar(Arena, L->getInit(), Name, Value,
                                         ValueFree, RenameCounter, Suffix);
    if (L->getName() == Name) {
      // Shadowed in the body.
      return Init == L->getInit()
                 ? T
                 : Arena.makeLet(L->getName(), Init, L->getBody());
    }
    std::string BoundName = L->getName();
    const Term *Body = L->getBody();
    if (ValueFree.count(BoundName)) {
      std::string NewName = Fresh(BoundName);
      Body = substituteTermVar(Arena, Body, BoundName,
                               Arena.makeVar(NewName), {}, RenameCounter,
                               Suffix);
      BoundName = NewName;
    }
    const Term *NewBody = substituteTermVar(Arena, Body, Name, Value,
                                            ValueFree, RenameCounter, Suffix);
    if (Init == L->getInit() && NewBody == L->getBody() &&
        BoundName == L->getName())
      return T;
    return Arena.makeLet(BoundName, Init, NewBody);
  }
  case TermKind::Tuple: {
    const auto *Tu = cast<TupleTerm>(T);
    std::vector<const Term *> Elems;
    bool Changed = false;
    for (const Term *E : Tu->getElements()) {
      const Term *NE = substituteTermVar(Arena, E, Name, Value, ValueFree,
                                         RenameCounter, Suffix);
      Changed |= NE != E;
      Elems.push_back(NE);
    }
    return Changed ? Arena.makeTuple(std::move(Elems)) : T;
  }
  case TermKind::Nth: {
    const auto *N = cast<NthTerm>(T);
    const Term *Tu = substituteTermVar(Arena, N->getTuple(), Name, Value,
                                       ValueFree, RenameCounter, Suffix);
    return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
  }
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    const Term *C = substituteTermVar(Arena, I->getCond(), Name, Value,
                                      ValueFree, RenameCounter, Suffix);
    const Term *Th = substituteTermVar(Arena, I->getThen(), Name, Value,
                                       ValueFree, RenameCounter, Suffix);
    const Term *El = substituteTermVar(Arena, I->getElse(), Name, Value,
                                       ValueFree, RenameCounter, Suffix);
    if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
      return T;
    return Arena.makeIf(C, Th, El);
  }
  case TermKind::Fix: {
    const auto *F = cast<FixTerm>(T);
    const Term *Op = substituteTermVar(Arena, F->getOperand(), Name, Value,
                                       ValueFree, RenameCounter, Suffix);
    return Op == F->getOperand() ? T : Arena.makeFix(Op);
  }
  }
  return T;
}
