//===- systemf/Eval.h - CBV evaluator for System F --------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A call-by-value environment/closure evaluator for System F.  The
/// paper's runtime mechanism — implicitly passed model dictionaries —
/// bottoms out here as ordinary tuple arguments.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_EVAL_H
#define FG_SYSTEMF_EVAL_H

#include "systemf/Term.h"
#include "systemf/Value.h"

namespace fg {
namespace sf {

/// Resource limits for an evaluation.  Property tests use small limits
/// so that generated divergent programs fail fast instead of hanging.
struct EvalOptions {
  uint64_t MaxSteps = 200'000'000; ///< Eval node visits before aborting.
  unsigned MaxDepth = 100'000;     ///< Recursion depth before aborting.
};

/// Evaluates System F terms.  Stateless between calls except for the
/// step counter, which is reset by eval().
class Evaluator {
public:
  explicit Evaluator(EvalOptions Opts = EvalOptions()) : Opts(Opts) {}

  /// Evaluates \p T under environment \p Env.
  EvalResult eval(const Term *T, EnvPtr Env);

  /// Applies a function value to arguments (exposed for builtins/tests).
  EvalResult apply(const ValuePtr &Fn, const std::vector<ValuePtr> &Args);

  uint64_t getStepsUsed() const { return Steps; }

private:
  EvalResult evalTerm(const Term *T, const EnvPtr &Env);
  EvalResult applyImpl(const ValuePtr &Fn, const std::vector<ValuePtr> &Args);

  EvalOptions Opts;
  uint64_t Steps = 0;
  unsigned Depth = 0;
};

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_EVAL_H
