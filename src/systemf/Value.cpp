//===- systemf/Value.cpp - Runtime values ---------------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Value.h"
#include <sstream>

using namespace fg;
using namespace fg::sf;

std::string fg::sf::valueToString(const Value *V) {
  if (!V)
    return "<null-value>";
  switch (V->getKind()) {
  case ValueKind::Int: {
    std::ostringstream OS;
    OS << cast<IntValue>(V)->getValue();
    return OS.str();
  }
  case ValueKind::Bool:
    return cast<BoolValue>(V)->getValue() ? "true" : "false";
  case ValueKind::Tuple: {
    std::ostringstream OS;
    OS << '(';
    const auto &Elems = cast<TupleValue>(V)->getElements();
    for (size_t I = 0; I != Elems.size(); ++I) {
      if (I)
        OS << ", ";
      OS << valueToString(Elems[I].get());
    }
    OS << ')';
    return OS.str();
  }
  case ValueKind::List: {
    std::ostringstream OS;
    OS << '[';
    bool First = true;
    for (const ListValue *L = cast<ListValue>(V); L && !L->isNil();
         L = L->getTail().get()) {
      if (!First)
        OS << ", ";
      First = false;
      OS << valueToString(L->getHead().get());
    }
    OS << ']';
    return OS.str();
  }
  case ValueKind::Closure:
  case ValueKind::CompiledClosure:
  case ValueKind::VmClosure:
    return "<closure>";
  case ValueKind::TyClosure:
  case ValueKind::CompiledTyClosure:
  case ValueKind::VmTyClosure:
    return "<tyclosure>";
  case ValueKind::Fix:
    return "<fix>";
  case ValueKind::Builtin:
    return "<builtin " + cast<BuiltinValue>(V)->getName() + ">";
  }
  return "<unknown-value>";
}

bool fg::sf::valueEquals(const Value *A, const Value *B) {
  if (A == B)
    return true;
  if (!A || !B || A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case ValueKind::Int:
    return cast<IntValue>(A)->getValue() == cast<IntValue>(B)->getValue();
  case ValueKind::Bool:
    return cast<BoolValue>(A)->getValue() == cast<BoolValue>(B)->getValue();
  case ValueKind::Tuple: {
    const auto &EA = cast<TupleValue>(A)->getElements();
    const auto &EB = cast<TupleValue>(B)->getElements();
    if (EA.size() != EB.size())
      return false;
    for (size_t I = 0; I != EA.size(); ++I)
      if (!valueEquals(EA[I].get(), EB[I].get()))
        return false;
    return true;
  }
  case ValueKind::List: {
    const auto *LA = cast<ListValue>(A);
    const auto *LB = cast<ListValue>(B);
    while (LA && LB && !LA->isNil() && !LB->isNil()) {
      if (!valueEquals(LA->getHead().get(), LB->getHead().get()))
        return false;
      LA = LA->getTail().get();
      LB = LB->getTail().get();
    }
    return LA && LB && LA->isNil() == LB->isNil();
  }
  case ValueKind::Closure:
  case ValueKind::TyClosure:
  case ValueKind::Fix:
  case ValueKind::Builtin:
  case ValueKind::CompiledClosure:
  case ValueKind::CompiledTyClosure:
  case ValueKind::VmClosure:
  case ValueKind::VmTyClosure:
    return false; // Distinct function values are never equal.
  }
  return false;
}
