//===- systemf/Value.cpp - Runtime values ---------------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Value.h"
#include <array>
#include <utility>

using namespace fg;
using namespace fg::sf;

//===----------------------------------------------------------------------===//
// Live-object gauges
//===----------------------------------------------------------------------===//

std::atomic<int64_t> &fg::sf::liveValueGauge() {
  static std::atomic<int64_t> G{0};
  return G;
}

std::atomic<int64_t> &fg::sf::liveEnvNodeGauge() {
  static std::atomic<int64_t> G{0};
  return G;
}

//===----------------------------------------------------------------------===//
// Interned immediates
//===----------------------------------------------------------------------===//

namespace {

// Ints in [-kIntPoolMin, kIntPoolMax] are shared singletons.  The range
// covers loop counters, list contents, and every benchmark result the
// repo pins; anything outside allocates as before.
constexpr int64_t IntPoolMin = -4096;
constexpr int64_t IntPoolMax = 4096;

struct IntPool {
  std::array<ValuePtr, IntPoolMax - IntPoolMin + 1> P;
  IntPool() {
    for (int64_t I = IntPoolMin; I <= IntPoolMax; ++I)
      P[I - IntPoolMin] = std::make_shared<IntValue>(I);
  }
};

} // namespace

ValuePtr fg::sf::boxInt(int64_t V) {
  static const IntPool Pool;
  if (V >= IntPoolMin && V <= IntPoolMax)
    return Pool.P[V - IntPoolMin];
  return std::make_shared<IntValue>(V);
}

ValuePtr fg::sf::boxBool(bool B) {
  static const ValuePtr True = std::make_shared<BoolValue>(true);
  static const ValuePtr False = std::make_shared<BoolValue>(false);
  return B ? True : False;
}

const std::shared_ptr<const ListValue> &fg::sf::nilList() {
  static const std::shared_ptr<const ListValue> Nil =
      std::make_shared<ListValue>();
  return Nil;
}

//===----------------------------------------------------------------------===//
// Iterative destruction for tuple trees
//===----------------------------------------------------------------------===//

namespace {

// ~TupleValue moves its elements here instead of destroying them
// inline; the outermost dying tuple on this thread drains the queue in
// a loop, so a tuple-of-tuples tree of any depth unwinds iteratively.
// Lists and environments handle their own spines hand-over-hand (see
// Value.h), and a list head that is itself a deep tuple lands in this
// queue too, so the two disciplines compose: mixed list/tuple nests
// cost O(1) native stack per level.
thread_local std::vector<std::vector<ValuePtr>> TupleDrain;
thread_local bool TupleDraining = false;

} // namespace

TupleValue::~TupleValue() {
  if (Elements.empty())
    return;
  TupleDrain.push_back(std::move(Elements));
  if (TupleDraining)
    return; // the draining frame below us owns the loop
  TupleDraining = true;
  while (!TupleDrain.empty()) {
    std::vector<ValuePtr> Es = std::move(TupleDrain.back());
    TupleDrain.pop_back();
    Es.clear(); // may re-enter ~TupleValue, which only enqueues
  }
  TupleDraining = false;
}

//===----------------------------------------------------------------------===//
// Rendering and structural equality
//===----------------------------------------------------------------------===//
//
// Both walks are driven by explicit work-lists: deeply nested values
// (tuple-of-tuple spines, dictionaries of dictionaries) must not
// recurse on the native stack — the fuzzer's deep-nesting scenario and
// the AOT runtime's iterative renderer pin the same discipline.

std::string fg::sf::valueToString(const Value *V) {
  struct Tok {
    const Value *V;  // Value to render, or
    const char *Lit; // literal text to append.
  };
  std::string S;
  std::vector<Tok> Stk;
  Stk.push_back({V, nullptr});
  while (!Stk.empty()) {
    Tok T = Stk.back();
    Stk.pop_back();
    if (T.Lit) {
      S += T.Lit;
      continue;
    }
    const Value *C = T.V;
    if (!C) {
      S += "<null-value>";
      continue;
    }
    switch (C->getKind()) {
    case ValueKind::Int:
      S += std::to_string(cast<IntValue>(C)->getValue());
      break;
    case ValueKind::Bool:
      S += cast<BoolValue>(C)->getValue() ? "true" : "false";
      break;
    case ValueKind::Tuple: {
      const auto &Elems = cast<TupleValue>(C)->getElements();
      S += '(';
      Stk.push_back({nullptr, ")"});
      for (size_t I = Elems.size(); I != 0; --I) {
        Stk.push_back({Elems[I - 1].get(), nullptr});
        if (I != 1)
          Stk.push_back({nullptr, ", "});
      }
      break;
    }
    case ValueKind::List: {
      std::vector<const Value *> Heads;
      for (const ListValue *L = cast<ListValue>(C); L && !L->isNil();
           L = L->getTail().get())
        Heads.push_back(L->getHead().get());
      S += '[';
      Stk.push_back({nullptr, "]"});
      for (size_t I = Heads.size(); I != 0; --I) {
        Stk.push_back({Heads[I - 1], nullptr});
        if (I != 1)
          Stk.push_back({nullptr, ", "});
      }
      break;
    }
    case ValueKind::Closure:
    case ValueKind::CompiledClosure:
    case ValueKind::VmClosure:
      S += "<closure>";
      break;
    case ValueKind::TyClosure:
    case ValueKind::CompiledTyClosure:
    case ValueKind::VmTyClosure:
      S += "<tyclosure>";
      break;
    case ValueKind::Fix:
      S += "<fix>";
      break;
    case ValueKind::Builtin:
      S += "<builtin " + cast<BuiltinValue>(C)->getName() + ">";
      break;
    }
  }
  return S;
}

bool fg::sf::valueEquals(const Value *A, const Value *B) {
  std::vector<std::pair<const Value *, const Value *>> Work;
  Work.emplace_back(A, B);
  while (!Work.empty()) {
    const Value *X = Work.back().first;
    const Value *Y = Work.back().second;
    Work.pop_back();
    if (X == Y)
      continue;
    if (!X || !Y || X->getKind() != Y->getKind())
      return false;
    switch (X->getKind()) {
    case ValueKind::Int:
      if (cast<IntValue>(X)->getValue() != cast<IntValue>(Y)->getValue())
        return false;
      break;
    case ValueKind::Bool:
      if (cast<BoolValue>(X)->getValue() != cast<BoolValue>(Y)->getValue())
        return false;
      break;
    case ValueKind::Tuple: {
      const auto &EX = cast<TupleValue>(X)->getElements();
      const auto &EY = cast<TupleValue>(Y)->getElements();
      if (EX.size() != EY.size())
        return false;
      for (size_t I = 0; I != EX.size(); ++I)
        Work.emplace_back(EX[I].get(), EY[I].get());
      break;
    }
    case ValueKind::List: {
      // Walk the spines here (sharing makes them long, not deep) and
      // queue the heads for the structural work-list.
      const auto *LX = cast<ListValue>(X);
      const auto *LY = cast<ListValue>(Y);
      while (LX && LY && !LX->isNil() && !LY->isNil()) {
        Work.emplace_back(LX->getHead().get(), LY->getHead().get());
        LX = LX->getTail().get();
        LY = LY->getTail().get();
      }
      if (!(LX && LY && LX->isNil() == LY->isNil()))
        return false;
      break;
    }
    case ValueKind::Closure:
    case ValueKind::TyClosure:
    case ValueKind::Fix:
    case ValueKind::Builtin:
    case ValueKind::CompiledClosure:
    case ValueKind::CompiledTyClosure:
    case ValueKind::VmClosure:
    case ValueKind::VmTyClosure:
      return false; // Distinct function values are never equal.
    }
  }
  return true;
}
