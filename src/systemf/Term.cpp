//===- systemf/Term.cpp - System F term printer ---------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Term.h"
#include <cassert>
#include <sstream>

using namespace fg;
using namespace fg::sf;

namespace {

void printTerm(std::ostringstream &OS, const Term *T, bool Parens) {
  switch (T->getKind()) {
  case TermKind::IntLit:
    OS << cast<IntLit>(T)->getValue();
    return;
  case TermKind::BoolLit:
    OS << (cast<BoolLit>(T)->getValue() ? "true" : "false");
    return;
  case TermKind::Var:
    OS << cast<VarTerm>(T)->getName();
    return;
  case TermKind::Abs: {
    const auto *A = cast<AbsTerm>(T);
    if (Parens)
      OS << '(';
    OS << "fun(";
    for (unsigned I = 0, E = A->getParams().size(); I != E; ++I) {
      if (I)
        OS << ", ";
      OS << A->getParams()[I].Name << " : "
         << typeToString(A->getParams()[I].Ty);
    }
    OS << "). ";
    printTerm(OS, A->getBody(), /*Parens=*/false);
    if (Parens)
      OS << ')';
    return;
  }
  case TermKind::App: {
    const auto *A = cast<AppTerm>(T);
    printTerm(OS, A->getFn(), /*Parens=*/true);
    OS << '(';
    for (unsigned I = 0, E = A->getArgs().size(); I != E; ++I) {
      if (I)
        OS << ", ";
      printTerm(OS, A->getArgs()[I], /*Parens=*/false);
    }
    OS << ')';
    return;
  }
  case TermKind::TyAbs: {
    const auto *A = cast<TyAbsTerm>(T);
    if (Parens)
      OS << '(';
    OS << "generic ";
    for (unsigned I = 0, E = A->getParams().size(); I != E; ++I) {
      if (I)
        OS << ", ";
      OS << A->getParams()[I].Name;
    }
    OS << ". ";
    printTerm(OS, A->getBody(), /*Parens=*/false);
    if (Parens)
      OS << ')';
    return;
  }
  case TermKind::TyApp: {
    const auto *A = cast<TyAppTerm>(T);
    printTerm(OS, A->getFn(), /*Parens=*/true);
    OS << '[';
    for (unsigned I = 0, E = A->getTypeArgs().size(); I != E; ++I) {
      if (I)
        OS << ", ";
      OS << typeToString(A->getTypeArgs()[I]);
    }
    OS << ']';
    return;
  }
  case TermKind::Let: {
    const auto *L = cast<LetTerm>(T);
    if (Parens)
      OS << '(';
    OS << "let " << L->getName() << " = ";
    printTerm(OS, L->getInit(), /*Parens=*/false);
    OS << " in ";
    printTerm(OS, L->getBody(), /*Parens=*/false);
    if (Parens)
      OS << ')';
    return;
  }
  case TermKind::Tuple: {
    const auto *Tu = cast<TupleTerm>(T);
    OS << '(';
    for (unsigned I = 0, E = Tu->getElements().size(); I != E; ++I) {
      if (I)
        OS << ", ";
      printTerm(OS, Tu->getElements()[I], /*Parens=*/false);
    }
    if (Tu->getElements().size() == 1)
      OS << ','; // Distinguish a 1-tuple from parenthesization.
    OS << ')';
    return;
  }
  case TermKind::Nth: {
    const auto *N = cast<NthTerm>(T);
    OS << "nth ";
    printTerm(OS, N->getTuple(), /*Parens=*/true);
    OS << ' ' << N->getIndex();
    return;
  }
  case TermKind::If: {
    const auto *I = cast<IfTerm>(T);
    if (Parens)
      OS << '(';
    OS << "if ";
    printTerm(OS, I->getCond(), /*Parens=*/false);
    OS << " then ";
    printTerm(OS, I->getThen(), /*Parens=*/false);
    OS << " else ";
    printTerm(OS, I->getElse(), /*Parens=*/false);
    if (Parens)
      OS << ')';
    return;
  }
  case TermKind::Fix: {
    const auto *F = cast<FixTerm>(T);
    if (Parens)
      OS << '(';
    OS << "fix ";
    printTerm(OS, F->getOperand(), /*Parens=*/true);
    if (Parens)
      OS << ')';
    return;
  }
  }
  assert(false && "unknown term kind");
}

} // namespace

std::string fg::sf::termToString(const Term *T) {
  if (!T)
    return "<null-term>";
  std::ostringstream OS;
  printTerm(OS, T, /*Parens=*/false);
  return OS.str();
}
