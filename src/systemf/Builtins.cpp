//===- systemf/Builtins.cpp - Builtin prelude -----------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Builtins.h"
#include <cassert>

using namespace fg;
using namespace fg::sf;

namespace {

EvalResult wrongArg(const std::string &Name) {
  return EvalResult::failure("builtin `" + Name +
                             "` applied to a value of the wrong kind");
}

/// Makes a binary int -> int builtin.
ValuePtr makeIntBinOp(const std::string &Name,
                      int64_t (*Op)(int64_t, int64_t)) {
  return std::make_shared<BuiltinValue>(
      Name, 2, [Name, Op](const std::vector<ValuePtr> &Args) -> EvalResult {
        const auto *A = dyn_cast<IntValue>(Args[0].get());
        const auto *B = dyn_cast<IntValue>(Args[1].get());
        if (!A || !B)
          return wrongArg(Name);
        return EvalResult::success(
            boxInt(Op(A->getValue(), B->getValue())));
      });
}

/// Makes a binary int -> bool builtin.
ValuePtr makeIntCmpOp(const std::string &Name, bool (*Op)(int64_t, int64_t)) {
  return std::make_shared<BuiltinValue>(
      Name, 2, [Name, Op](const std::vector<ValuePtr> &Args) -> EvalResult {
        const auto *A = dyn_cast<IntValue>(Args[0].get());
        const auto *B = dyn_cast<IntValue>(Args[1].get());
        if (!A || !B)
          return wrongArg(Name);
        return EvalResult::success(
            boxBool(Op(A->getValue(), B->getValue())));
      });
}

/// Makes a binary bool -> bool builtin.
ValuePtr makeBoolBinOp(const std::string &Name, bool (*Op)(bool, bool)) {
  return std::make_shared<BuiltinValue>(
      Name, 2, [Name, Op](const std::vector<ValuePtr> &Args) -> EvalResult {
        const auto *A = dyn_cast<BoolValue>(Args[0].get());
        const auto *B = dyn_cast<BoolValue>(Args[1].get());
        if (!A || !B)
          return wrongArg(Name);
        return EvalResult::success(
            boxBool(Op(A->getValue(), B->getValue())));
      });
}

} // namespace

ValuePtr fg::sf::makeListValue(const std::vector<ValuePtr> &Elements) {
  std::shared_ptr<const ListValue> L = nilList();
  for (size_t I = Elements.size(); I != 0; --I)
    L = std::make_shared<ListValue>(Elements[I - 1], L);
  return L;
}

ValuePtr fg::sf::makeIntListValue(const std::vector<int64_t> &Elements) {
  std::vector<ValuePtr> Vals;
  Vals.reserve(Elements.size());
  for (int64_t E : Elements)
    Vals.push_back(boxInt(E));
  return makeListValue(Vals);
}

Prelude fg::sf::makePrelude(TypeContext &Ctx) {
  Prelude P;
  const Type *IntTy = Ctx.getIntType();
  const Type *BoolTy = Ctx.getBoolType();

  auto Add = [&P](std::string Name, const Type *Ty, ValuePtr Val) {
    P.Entries.push_back({Name, Ty, Val});
    P.Types.bind(Name, Ty);
    P.Values = envBind(P.Values, std::move(Name), std::move(Val));
  };

  const Type *IntBinTy = Ctx.getArrowType({IntTy, IntTy}, IntTy);
  const Type *IntCmpTy = Ctx.getArrowType({IntTy, IntTy}, BoolTy);
  const Type *BoolBinTy = Ctx.getArrowType({BoolTy, BoolTy}, BoolTy);

  Add("iadd", IntBinTy,
      makeIntBinOp("iadd", [](int64_t A, int64_t B) { return A + B; }));
  Add("isub", IntBinTy,
      makeIntBinOp("isub", [](int64_t A, int64_t B) { return A - B; }));
  Add("imult", IntBinTy,
      makeIntBinOp("imult", [](int64_t A, int64_t B) { return A * B; }));
  Add("imax", IntBinTy, makeIntBinOp("imax", [](int64_t A, int64_t B) {
        return A > B ? A : B;
      }));
  Add("imin", IntBinTy, makeIntBinOp("imin", [](int64_t A, int64_t B) {
        return A < B ? A : B;
      }));

  // Division and modulus can fail at runtime; they get bespoke bodies.
  Add("idiv", IntBinTy,
      std::make_shared<BuiltinValue>(
          "idiv", 2, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            const auto *A = dyn_cast<IntValue>(Args[0].get());
            const auto *B = dyn_cast<IntValue>(Args[1].get());
            if (!A || !B)
              return wrongArg("idiv");
            if (B->getValue() == 0)
              return EvalResult::failure("division by zero");
            return EvalResult::success(
                boxInt(A->getValue() / B->getValue()));
          }));
  Add("imod", IntBinTy,
      std::make_shared<BuiltinValue>(
          "imod", 2, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            const auto *A = dyn_cast<IntValue>(Args[0].get());
            const auto *B = dyn_cast<IntValue>(Args[1].get());
            if (!A || !B)
              return wrongArg("imod");
            if (B->getValue() == 0)
              return EvalResult::failure("modulus by zero");
            return EvalResult::success(
                boxInt(A->getValue() % B->getValue()));
          }));

  Add("ineg", Ctx.getArrowType({IntTy}, IntTy),
      std::make_shared<BuiltinValue>(
          "ineg", 1, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            const auto *A = dyn_cast<IntValue>(Args[0].get());
            if (!A)
              return wrongArg("ineg");
            return EvalResult::success(
                boxInt(-A->getValue()));
          }));

  Add("ieq", IntCmpTy,
      makeIntCmpOp("ieq", [](int64_t A, int64_t B) { return A == B; }));
  Add("ine", IntCmpTy,
      makeIntCmpOp("ine", [](int64_t A, int64_t B) { return A != B; }));
  Add("ilt", IntCmpTy,
      makeIntCmpOp("ilt", [](int64_t A, int64_t B) { return A < B; }));
  Add("ile", IntCmpTy,
      makeIntCmpOp("ile", [](int64_t A, int64_t B) { return A <= B; }));
  Add("igt", IntCmpTy,
      makeIntCmpOp("igt", [](int64_t A, int64_t B) { return A > B; }));
  Add("ige", IntCmpTy,
      makeIntCmpOp("ige", [](int64_t A, int64_t B) { return A >= B; }));

  Add("band", BoolBinTy,
      makeBoolBinOp("band", [](bool A, bool B) { return A && B; }));
  Add("bor", BoolBinTy,
      makeBoolBinOp("bor", [](bool A, bool B) { return A || B; }));
  Add("bnot", Ctx.getArrowType({BoolTy}, BoolTy),
      std::make_shared<BuiltinValue>(
          "bnot", 1, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            const auto *A = dyn_cast<BoolValue>(Args[0].get());
            if (!A)
              return wrongArg("bnot");
            return EvalResult::success(
                boxBool(!A->getValue()));
          }));

  // Polymorphic list primitives.  At runtime, type application is the
  // identity on builtins (types are erased), so `nil[int]` is just nil.
  unsigned TId = Ctx.freshParamId();
  const Type *TVar = Ctx.getParamType(TId, "t");
  const Type *ListT = Ctx.getListType(TVar);
  auto Poly = [&](const Type *Body) {
    return Ctx.getForAllType({{TId, "t"}}, Body);
  };

  Add("nil", Poly(ListT), nilList());

  Add("cons", Poly(Ctx.getArrowType({TVar, ListT}, ListT)),
      std::make_shared<BuiltinValue>(
          "cons", 2, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            auto Tail = std::dynamic_pointer_cast<const ListValue>(Args[1]);
            if (!Tail)
              return wrongArg("cons");
            return EvalResult::success(
                std::make_shared<ListValue>(Args[0], Tail));
          }));

  Add("car", Poly(Ctx.getArrowType({ListT}, TVar)),
      std::make_shared<BuiltinValue>(
          "car", 1, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            const auto *L = dyn_cast<ListValue>(Args[0].get());
            if (!L)
              return wrongArg("car");
            if (L->isNil())
              return EvalResult::failure("`car` of the empty list");
            return EvalResult::success(L->getHead());
          }));

  Add("cdr", Poly(Ctx.getArrowType({ListT}, ListT)),
      std::make_shared<BuiltinValue>(
          "cdr", 1, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            const auto *L = dyn_cast<ListValue>(Args[0].get());
            if (!L)
              return wrongArg("cdr");
            if (L->isNil())
              return EvalResult::failure("`cdr` of the empty list");
            return EvalResult::success(L->getTail());
          }));

  Add("null", Poly(Ctx.getArrowType({ListT}, BoolTy)),
      std::make_shared<BuiltinValue>(
          "null", 1, [](const std::vector<ValuePtr> &Args) -> EvalResult {
            const auto *L = dyn_cast<ListValue>(Args[0].get());
            if (!L)
              return wrongArg("null");
            return EvalResult::success(
                boxBool(L->isNil()));
          }));

  return P;
}
