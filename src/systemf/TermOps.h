//===- systemf/TermOps.h - Shared term rewriting utilities ------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term-level analyses and substitutions shared by the optimizer
/// passes (Optimize.cpp) and the whole-program specializer
/// (Specialize.cpp): purity, free variables, occurrence counting, type
/// substitution inside terms, and capture-avoiding variable
/// substitution.  All of them preserve sharing — a transform returns
/// the original node when nothing changed underneath it — which is
/// what keeps the pass pipeline free of full-term copies.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_TERMOPS_H
#define FG_SYSTEMF_TERMOPS_H

#include "systemf/Term.h"
#include "systemf/Type.h"
#include <string>
#include <unordered_set>

namespace fg {
namespace sf {

/// Pure, terminating terms: safe to duplicate, reorder, or drop.  On a
/// *well-typed* program `nth` of a pure tuple cannot fail, so it is
/// included; applications are not (they may diverge or error).
bool isPureTerm(const Term *T);

/// The free term variables of \p T.
std::unordered_set<std::string> freeTermVars(const Term *T);

/// Number of free occurrences of \p Name in \p T (shadowing-aware).
unsigned countVarOccurrences(const Term *T, const std::string &Name);

/// Substitutes types for type-parameter ids throughout \p T (parameter
/// annotations, type arguments).  Binder ids are globally unique, so no
/// renaming is ever required; this is asserted.
const Term *substituteTermTypes(TermArena &Arena, TypeContext &Ctx,
                                const Term *T, const TypeSubst &S);

/// Substitutes \p Value for free occurrences of \p Name in \p T.
/// \p ValueFree are the free variables of \p Value; any binder along
/// the way that would capture one of them is alpha-renamed first, using
/// fresh names `<base><Suffix><RenameCounter++>`.  Callers share one
/// counter per rewrite session (and distinct suffixes per client) so
/// fresh names never collide.
const Term *substituteTermVar(TermArena &Arena, const Term *T,
                              const std::string &Name, const Term *Value,
                              const std::unordered_set<std::string> &ValueFree,
                              unsigned &RenameCounter,
                              const char *Suffix = "$r");

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_TERMOPS_H
