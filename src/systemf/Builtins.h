//===- systemf/Builtins.h - Builtin prelude ---------------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin operations the paper's programs assume: integer
/// arithmetic (`iadd`, `imult`, ...), comparisons, booleans, and the
/// polymorphic list primitives `nil`, `cons`, `car`, `cdr`, `null`
/// (Figures 3 and 5).  One definition serves both the System F
/// typechecker (types) and the evaluator (values), and the F_G front
/// end imports the same set.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SYSTEMF_BUILTINS_H
#define FG_SYSTEMF_BUILTINS_H

#include "systemf/TypeCheck.h"
#include "systemf/Value.h"
#include <string>
#include <vector>

namespace fg {
namespace sf {

/// One builtin: its name, System F type, and runtime value.
struct BuiltinEntry {
  std::string Name;
  const Type *Ty;
  ValuePtr Val;
};

/// The full builtin environment.
struct Prelude {
  std::vector<BuiltinEntry> Entries;
  TypeEnv Types; ///< Name -> type, for the typechecker.
  EnvPtr Values; ///< Runtime environment, for the evaluator.
};

/// Builds the prelude against \p Ctx.  The same TypeContext must be used
/// for the program being checked.
Prelude makePrelude(TypeContext &Ctx);

/// Convenience: builds a ListValue from \p Elements.
ValuePtr makeListValue(const std::vector<ValuePtr> &Elements);

/// Convenience: builds a list-of-int value.
ValuePtr makeIntListValue(const std::vector<int64_t> &Elements);

} // namespace sf
} // namespace fg

#endif // FG_SYSTEMF_BUILTINS_H
