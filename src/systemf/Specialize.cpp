//===- systemf/Specialize.cpp - Whole-program specialization --------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "systemf/Specialize.h"
#include "systemf/Optimize.h"
#include "systemf/TermOps.h"
#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace fg;
using namespace fg::sf;

bool fg::sf::parseSpecializeLevel(const std::string &Text,
                                  SpecializeLevel &Level) {
  if (Text == "off")
    Level = SpecializeLevel::Off;
  else if (Text == "apps")
    Level = SpecializeLevel::Apps;
  else if (Text == "dicts")
    Level = SpecializeLevel::Dicts;
  else if (Text == "full")
    Level = SpecializeLevel::Full;
  else
    return false;
  return true;
}

const char *fg::sf::specializeLevelName(SpecializeLevel Level) {
  switch (Level) {
  case SpecializeLevel::Off:
    return "off";
  case SpecializeLevel::Apps:
    return "apps";
  case SpecializeLevel::Dicts:
    return "dicts";
  case SpecializeLevel::Full:
    return "full";
  }
  return "off";
}

namespace {

/// The structural size of a type, for the per-application blow-up
/// guard: nested instantiation chains double their argument size every
/// level, so capping it bounds the clone cascade.
size_t typeSize(const Type *T) {
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Param:
    return 1;
  case TypeKind::Arrow: {
    const auto *A = cast<ArrowType>(T);
    size_t N = 1 + typeSize(A->getResult());
    for (const Type *P : A->getParams())
      N += typeSize(P);
    return N;
  }
  case TypeKind::Tuple: {
    size_t N = 1;
    for (const Type *E : cast<TupleType>(T)->getElements())
      N += typeSize(E);
    return N;
  }
  case TypeKind::List:
    return 1 + typeSize(cast<ListType>(T)->getElement());
  case TypeKind::ForAll:
    return 1 + typeSize(cast<ForAllType>(T)->getBody());
  }
  return 1;
}

//===--------------------------------------------------------------------===//
// specialize-tyapps
//===--------------------------------------------------------------------===//

/// Clones let-bound type abstractions at the concrete type-argument
/// vectors they are applied to.  `let f = Λt.e in ... f[int] ...`
/// becomes `let f = Λt.e in let f$sN = e[int/t] in ... f$sN ...`; the
/// baseline passes then inline and reduce the clone, and the next
/// pipeline iteration specializes any type applications the clone body
/// exposed (the pipeline is the worklist).  A per-run cache keyed on
/// (binding, type-args) makes repeated and recursive instantiations
/// share one clone.
///
/// Type applications of prelude builtins (`car[int]` in a loop body)
/// carry no body to clone; those are hoisted to a single top-level
/// anchor let per instantiation so every use becomes a variable
/// reference instead of a per-evaluation dispatch.
class TypeAppSpecializer {
public:
  TypeAppSpecializer(TermArena &Arena, TypeContext &Ctx,
                     const std::unordered_set<std::string> *Hoistable,
                     SpecializeCounters &Counters, unsigned &NextCloneId,
                     size_t NodeBudget, size_t MaxTypeArgSize)
      : Arena(Arena), Ctx(Ctx), Hoistable(Hoistable), Counters(Counters),
        NextCloneId(NextCloneId), BudgetRemaining(NodeBudget),
        MaxTypeArgSize(MaxTypeArgSize) {}

  const Term *run(const Term *T) {
    const Term *R = visit(T);
    for (size_t I = TopAnchors.size(); I-- != 0;)
      R = Arena.makeLet(TopAnchors[I].first, TopAnchors[I].second, R);
    return R;
  }

private:
  /// One specializable definition: a let whose init is a type
  /// abstraction with a pure body.  Null entries in the scope stack
  /// mark opaque binders that merely shadow.
  struct Def {
    const TyAbsTerm *TyAbs = nullptr;
    std::unordered_map<std::string, std::string> Cache; // type-key → clone
    std::vector<std::pair<std::string, const Term *>> Clones;
  };

  bool typeClosed(const Type *Ty) {
    std::unordered_set<unsigned> Free;
    Ctx.collectFreeParams(Ty, Free);
    return Free.empty();
  }

  static std::string typeKey(const std::vector<const Type *> &Args) {
    // Types are hash-consed, so the pointer identifies the type.
    std::string Key;
    for (const Type *Arg : Args) {
      Key += '#';
      Key += std::to_string(reinterpret_cast<uintptr_t>(Arg));
    }
    return Key;
  }

  bool isShadowed(const std::string &Name) const {
    auto It = Scope.find(Name);
    return It != Scope.end() && !It->second.empty();
  }

  /// True when \p T is a type application of an unshadowed hoistable
  /// (builtin) variable at closed arguments; \p Key then identifies the
  /// instantiation.
  bool builtinTyAppKey(const Term *T, std::string &Key) {
    const auto *A = dyn_cast<TyAppTerm>(T);
    if (!A)
      return false;
    const auto *V = dyn_cast<VarTerm>(A->getFn());
    if (!V || !Hoistable || !Hoistable->count(V->getName()) ||
        isShadowed(V->getName()))
      return false;
    for (const Type *Arg : A->getTypeArgs())
      if (!typeClosed(Arg))
        return false;
    Key = V->getName() + typeKey(A->getTypeArgs());
    return true;
  }

  void pushOpaque(const std::string &Name) { Scope[Name].push_back(nullptr); }
  void pop(const std::string &Name) { Scope[Name].pop_back(); }

  const Term *visit(const Term *T) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;

    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        pushOpaque(P.Name);
      const Term *Body = visit(A->getBody());
      for (const ParamBinding &P : A->getParams())
        pop(P.Name);
      return Body == A->getBody() ? T : Arena.makeAbs(A->getParams(), Body);
    }

    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      // A let whose init is exactly a builtin instantiation is an
      // *anchor*: leave the init alone and let uses of the same
      // instantiation below resolve to this binding, otherwise the
      // hoister would re-anchor its own output forever.
      std::string AliasKey;
      bool IsAnchor = builtinTyAppKey(L->getInit(), AliasKey);
      const Term *Init = IsAnchor ? L->getInit() : visit(L->getInit());

      Def D;
      if (const auto *TA = dyn_cast<TyAbsTerm>(Init))
        // The clone is placed inside this let's body, so a body that
        // references an outer binding with this let's own name would be
        // captured there — skip such (pathological) definitions.
        if (isPureTerm(TA->getBody()) &&
            !freeTermVars(TA->getBody()).count(L->getName()))
          D.TyAbs = TA;
      Scope[L->getName()].push_back(D.TyAbs ? &D : nullptr);
      if (IsAnchor)
        AliasScope[AliasKey].push_back(L->getName());

      const Term *Body = visit(L->getBody());

      Scope[L->getName()].pop_back();
      if (IsAnchor)
        AliasScope[AliasKey].pop_back();

      if (Init == L->getInit() && Body == L->getBody() && D.Clones.empty())
        return T;
      // First-created clone outermost; later clones may not reference
      // earlier ones (they come from the same definition body), but the
      // order keeps the output readable.
      for (size_t I = D.Clones.size(); I-- != 0;)
        Body = Arena.makeLet(D.Clones[I].first, D.Clones[I].second, Body);
      return Arena.makeLet(L->getName(), Init, Body);
    }

    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      std::string Key;
      if (builtinTyAppKey(T, Key)) {
        auto AS = AliasScope.find(Key);
        if (AS != AliasScope.end() && !AS->second.empty()) {
          ++Counters.CacheHits;
          return Arena.makeVar(AS->second.back());
        }
        auto TC = TopCache.find(Key);
        if (TC != TopCache.end()) {
          ++Counters.CacheHits;
          return Arena.makeVar(TC->second);
        }
        const auto *V = cast<VarTerm>(A->getFn());
        std::string Name = V->getName() + "$s" + std::to_string(NextCloneId++);
        TopCache.emplace(Key, Name);
        TopAnchors.emplace_back(Name, T);
        ++Counters.ClonesCreated;
        return Arena.makeVar(Name);
      }

      const Term *Fn = visit(A->getFn());
      if (const auto *V = dyn_cast<VarTerm>(Fn)) {
        auto It = Scope.find(V->getName());
        Def *D = (It != Scope.end() && !It->second.empty()) ? It->second.back()
                                                            : nullptr;
        if (D && D->TyAbs->getParams().size() == A->getTypeArgs().size()) {
          bool Closed = true;
          size_t ArgSize = 0;
          for (const Type *Arg : A->getTypeArgs()) {
            Closed &= typeClosed(Arg);
            ArgSize += typeSize(Arg);
          }
          if (Closed) {
            if (ArgSize > MaxTypeArgSize) {
              ++Counters.BudgetHits;
            } else {
              std::string ArgsKey = typeKey(A->getTypeArgs());
              auto Hit = D->Cache.find(ArgsKey);
              if (Hit != D->Cache.end()) {
                ++Counters.CacheHits;
                return Arena.makeVar(Hit->second);
              }
              size_t CloneSize = countTermNodes(D->TyAbs->getBody());
              if (CloneSize > BudgetRemaining) {
                ++Counters.BudgetHits;
              } else {
                BudgetRemaining -= CloneSize;
                TypeSubst S;
                for (size_t I = 0; I != D->TyAbs->getParams().size(); ++I)
                  S[D->TyAbs->getParams()[I].Id] = A->getTypeArgs()[I];
                std::string CloneName =
                    V->getName() + "$s" + std::to_string(NextCloneId++);
                const Term *CloneInit =
                    substituteTermTypes(Arena, Ctx, D->TyAbs->getBody(), S);
                D->Cache.emplace(ArgsKey, CloneName);
                D->Clones.emplace_back(CloneName, CloneInit);
                ++Counters.ClonesCreated;
                return Arena.makeVar(CloneName);
              }
            }
          }
        }
      }
      return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
    }

    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const Term *Fn = visit(A->getFn());
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = visit(Arg);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }

    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = visit(A->getBody());
      return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
    }

    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = visit(E);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }

    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = visit(N->getTuple());
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }

    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = visit(I->getCond());
      const Term *Th = visit(I->getThen());
      const Term *El = visit(I->getElse());
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }

    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = visit(F->getOperand());
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  TermArena &Arena;
  TypeContext &Ctx;
  const std::unordered_set<std::string> *Hoistable;
  SpecializeCounters &Counters;
  unsigned &NextCloneId;
  size_t BudgetRemaining;
  size_t MaxTypeArgSize;

  std::unordered_map<std::string, std::vector<Def *>> Scope;
  /// Instantiation key → anchor-binding names currently in scope.
  std::unordered_map<std::string, std::vector<std::string>> AliasScope;
  /// Instantiation key → top-level anchor created this run.
  std::unordered_map<std::string, std::string> TopCache;
  std::vector<std::pair<std::string, const Term *>> TopAnchors;
};

//===--------------------------------------------------------------------===//
// devirtualize-dicts
//===--------------------------------------------------------------------===//

/// Constant-propagates the element-wise *shape* of statically known
/// dictionary records through let/app chains and rewrites member
/// projections `nth d k` into direct references to the model's witness.
///
/// A dictionary whose elements are not all simple is first split into
/// per-element anchor lets (`let d$aN = witness in let d = (.., d$aN, ..)`)
/// so a projection has a variable to resolve to; anchors of nested
/// records (refinements, associated types) carry shapes of their own,
/// so chains like `nth (nth d 0) 1` resolve through them.  Binding
/// identity (a per-binder id checked at every use) keeps shadowing
/// honest.
///
/// Applications of literal lambdas with at least one impure argument —
/// the residual the baseline beta pass must refuse — are rewritten to
/// `let`s of the arguments (same evaluation order, no closure
/// construction), which the baseline passes then reduce further.
class DictDevirtualizer {
public:
  DictDevirtualizer(TermArena &Arena, SpecializeCounters &Counters,
                    unsigned &NextAnchorId, unsigned &NextBetaId,
                    unsigned &NextRename)
      : Arena(Arena), Counters(Counters), NextAnchorId(NextAnchorId),
        NextBetaId(NextBetaId), NextRename(NextRename) {}

  const Term *run(const Term *T) { return visit(T); }

private:
  struct Elem {
    enum Kind { None, Var, Lit } K = None;
    std::string Name; ///< Var: the witness variable.
    unsigned Id = 0;  ///< Var: binding id (0 = free at registration).
    const Term *Node = nullptr; ///< Lit: the literal.
  };
  using Shape = std::shared_ptr<std::vector<Elem>>;

  struct Binding {
    unsigned Id;
    Shape S; ///< Null when the binder's value is unknown.
  };

  unsigned pushBinder(const std::string &Name, Shape S) {
    unsigned Id = ++NextBindId;
    Env[Name].push_back({Id, std::move(S)});
    return Id;
  }
  void popBinder(const std::string &Name) { Env[Name].pop_back(); }

  const Binding *lookup(const std::string &Name) const {
    auto It = Env.find(Name);
    if (It == Env.end() || It->second.empty())
      return nullptr;
    return &It->second.back();
  }

  /// A recorded element is only usable while the binding it named still
  /// means the same thing at the use site.
  bool elemValid(const Elem &E) const {
    const Binding *B = lookup(E.Name);
    return E.Id == 0 ? B == nullptr : (B && B->Id == E.Id);
  }

  static bool isSimple(const Term *T) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return true;
    default:
      return false;
    }
  }

  Shape makeShape(const TupleTerm *Tu) {
    auto S = std::make_shared<std::vector<Elem>>();
    for (const Term *E : Tu->getElements()) {
      Elem El;
      if (const auto *V = dyn_cast<VarTerm>(E)) {
        El.K = Elem::Var;
        El.Name = V->getName();
        const Binding *B = lookup(V->getName());
        El.Id = B ? B->Id : 0;
      } else if (isSimple(E)) {
        El.K = Elem::Lit;
        El.Node = E;
      }
      S->push_back(std::move(El));
    }
    return S;
  }

  /// Resolves the shape a term denotes, through variables and nested
  /// projection chains; null when unknown.
  Shape shapeOf(const Term *T) {
    if (const auto *V = dyn_cast<VarTerm>(T)) {
      const Binding *B = lookup(V->getName());
      return B ? B->S : nullptr;
    }
    if (const auto *N = dyn_cast<NthTerm>(T)) {
      Shape S = shapeOf(N->getTuple());
      if (!S || N->getIndex() >= S->size())
        return nullptr;
      const Elem &El = (*S)[N->getIndex()];
      if (El.K != Elem::Var || !elemValid(El))
        return nullptr;
      const Binding *B = lookup(El.Name);
      return B ? B->S : nullptr;
    }
    return nullptr;
  }

  /// True when \p T projects from \p Name (shadowing-aware) — the
  /// cheap pre-check that keeps element anchoring from re-running on
  /// dictionaries whose members were already devirtualized.
  bool hasProjection(const Term *T, const std::string &Name) const {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return false;
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        if (P.Name == Name)
          return false;
      return hasProjection(A->getBody(), Name);
    }
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      if (hasProjection(A->getFn(), Name))
        return true;
      for (const Term *Arg : A->getArgs())
        if (hasProjection(Arg, Name))
          return true;
      return false;
    }
    case TermKind::TyAbs:
      return hasProjection(cast<TyAbsTerm>(T)->getBody(), Name);
    case TermKind::TyApp:
      return hasProjection(cast<TyAppTerm>(T)->getFn(), Name);
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      if (hasProjection(L->getInit(), Name))
        return true;
      return L->getName() == Name ? false : hasProjection(L->getBody(), Name);
    }
    case TermKind::Tuple:
      for (const Term *E : cast<TupleTerm>(T)->getElements())
        if (hasProjection(E, Name))
          return true;
      return false;
    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      if (const auto *V = dyn_cast<VarTerm>(N->getTuple()))
        return V->getName() == Name;
      return hasProjection(N->getTuple(), Name);
    }
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      return hasProjection(I->getCond(), Name) ||
             hasProjection(I->getThen(), Name) ||
             hasProjection(I->getElse(), Name);
    }
    case TermKind::Fix:
      return hasProjection(cast<FixTerm>(T)->getOperand(), Name);
    }
    return false;
  }

  const Term *visit(const Term *T) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;

    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        pushBinder(P.Name, nullptr);
      const Term *Body = visit(A->getBody());
      for (const ParamBinding &P : A->getParams())
        popBinder(P.Name);
      return Body == A->getBody() ? T : Arena.makeAbs(A->getParams(), Body);
    }

    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = visit(L->getInit());

      // A dictionary literal with non-simple elements whose members are
      // still projected: split the elements into anchor lets so the
      // projections have somewhere to point, then reprocess.
      if (const auto *Tu = dyn_cast<TupleTerm>(Init)) {
        bool NeedsAnchor = false;
        for (const Term *E : Tu->getElements())
          NeedsAnchor |= !isSimple(E);
        if (NeedsAnchor && hasProjection(L->getBody(), L->getName())) {
          std::vector<std::pair<std::string, const Term *>> Anchors;
          std::vector<const Term *> Elems;
          for (const Term *E : Tu->getElements()) {
            if (isSimple(E)) {
              Elems.push_back(E);
              continue;
            }
            std::string AName =
                L->getName() + "$a" + std::to_string(NextAnchorId++);
            Anchors.emplace_back(AName, E);
            Elems.push_back(Arena.makeVar(AName));
          }
          const Term *NewLet = Arena.makeLet(
              L->getName(), Arena.makeTuple(std::move(Elems)), L->getBody());
          for (size_t I = Anchors.size(); I-- != 0;)
            NewLet =
                Arena.makeLet(Anchors[I].first, Anchors[I].second, NewLet);
          return visit(NewLet);
        }
      }

      Shape S;
      if (const auto *Tu = dyn_cast<TupleTerm>(Init))
        S = makeShape(Tu); // All-simple here (anchoring handled above).
      else
        S = shapeOf(Init); // Aliases and nested-record projections.
      pushBinder(L->getName(), std::move(S));
      const Term *Body = visit(L->getBody());
      popBinder(L->getName());

      if (Init == L->getInit() && Body == L->getBody())
        return T;
      return Arena.makeLet(L->getName(), Init, Body);
    }

    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = visit(N->getTuple());
      if (Shape S = shapeOf(Tu)) {
        if (N->getIndex() < S->size()) {
          const Elem &El = (*S)[N->getIndex()];
          if (El.K == Elem::Lit) {
            ++Counters.MembersDevirtualized;
            return El.Node;
          }
          if (El.K == Elem::Var && elemValid(El)) {
            ++Counters.MembersDevirtualized;
            return Arena.makeVar(El.Name);
          }
        }
      }
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }

    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const auto *Abs = dyn_cast<AbsTerm>(A->getFn());
      if (Abs && Abs->getParams().size() == A->getArgs().size()) {
        std::vector<const Term *> Args;
        bool Changed = false;
        bool AllPure = true;
        for (const Term *Arg : A->getArgs()) {
          const Term *NA = visit(Arg);
          Changed |= NA != Arg;
          AllPure &= isPureTerm(NA);
          Args.push_back(NA);
        }
        // Known dictionary arguments propagate their shape into the
        // body; binding ids keep any shadowing honest.
        for (size_t I = 0; I != Abs->getParams().size(); ++I) {
          Shape S;
          if (dyn_cast<VarTerm>(Args[I]))
            S = shapeOf(Args[I]);
          pushBinder(Abs->getParams()[I].Name, std::move(S));
        }
        const Term *Body = visit(Abs->getBody());
        for (size_t I = Abs->getParams().size(); I-- != 0;)
          popBinder(Abs->getParams()[I].Name);

        if (!AllPure) {
          // Let-beta: the baseline beta pass refuses impure arguments
          // because substitution could duplicate or reorder them; lets
          // keep the evaluation order and drop the closure allocation.
          // Params are renamed back to front so duplicate names resolve
          // the way application does (last binding owns the body).
          const Term *B = Body;
          std::vector<std::string> Fresh(Abs->getParams().size());
          for (size_t I = Abs->getParams().size(); I-- != 0;) {
            const std::string &P = Abs->getParams()[I].Name;
            Fresh[I] = P + "$b" + std::to_string(NextBetaId++);
            B = substituteTermVar(Arena, B, P, Arena.makeVar(Fresh[I]), {},
                                  NextRename, "$v");
          }
          for (size_t I = Abs->getParams().size(); I-- != 0;)
            B = Arena.makeLet(Fresh[I], Args[I], B);
          ++Counters.LetBetaExpansions;
          return B;
        }
        const Term *NewFn = Body == Abs->getBody()
                                ? A->getFn()
                                : Arena.makeAbs(Abs->getParams(), Body);
        if (!Changed && NewFn == A->getFn())
          return T;
        return Arena.makeApp(NewFn, std::move(Args));
      }
      const Term *Fn = visit(A->getFn());
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = visit(Arg);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }

    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = visit(A->getBody());
      return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
    }

    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = visit(A->getFn());
      return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
    }

    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = visit(E);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }

    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = visit(I->getCond());
      const Term *Th = visit(I->getThen());
      const Term *El = visit(I->getElse());
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }

    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = visit(F->getOperand());
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  TermArena &Arena;
  SpecializeCounters &Counters;
  unsigned &NextAnchorId;
  unsigned &NextBetaId;
  unsigned &NextRename;

  unsigned NextBindId = 0;
  std::unordered_map<std::string, std::vector<Binding>> Env;
};

//===--------------------------------------------------------------------===//
// eliminate-dead-dicts
//===--------------------------------------------------------------------===//

/// Cleans up what devirtualization leaves behind: dictionary parameters
/// whose every projection was rewritten away, and record fields nothing
/// projects any more.  Three shapes:
///
///   * `(fun(.., d, ..). body)(.., dict, ..)` with d unused and dict
///     pure — the parameter/argument pair is dropped;
///   * `let f = fun(.., d, ..). body in rest` where every use of f in
///     rest is a direct full-arity call with a pure argument in the
///     dead position — definition and all call sites are rewritten;
///   * `let d = (e0, .., en) in rest` (all pure) where rest only ever
///     projects d — unprojected fields are dropped and the surviving
///     projections reindexed.
class DeadDictEliminator {
public:
  DeadDictEliminator(TermArena &Arena, SpecializeCounters &Counters)
      : Arena(Arena), Counters(Counters) {}

  const Term *run(const Term *T) { return visit(T); }

private:
  /// Whether parameter \p I of \p A is referenced by the body.  With
  /// duplicate names the *last* duplicate owns the body occurrences.
  static bool paramUsed(const AbsTerm *A, size_t I) {
    const std::string &Name = A->getParams()[I].Name;
    for (size_t J = I + 1; J < A->getParams().size(); ++J)
      if (A->getParams()[J].Name == Name)
        return false;
    return countVarOccurrences(A->getBody(), Name) != 0;
  }

  /// True when every occurrence of \p Name in \p T is the head of a
  /// direct call of arity \p Arity whose arguments in the \p Dead
  /// positions are pure (shadowing-aware).
  static bool callsAllowDrop(const Term *T, const std::string &Name,
                             size_t Arity, const std::vector<size_t> &Dead) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
      return true;
    case TermKind::Var:
      return cast<VarTerm>(T)->getName() != Name;
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      if (const auto *V = dyn_cast<VarTerm>(A->getFn());
          V && V->getName() == Name) {
        if (A->getArgs().size() != Arity)
          return false;
        for (size_t I : Dead)
          if (!isPureTerm(A->getArgs()[I]))
            return false;
        for (const Term *Arg : A->getArgs())
          if (!callsAllowDrop(Arg, Name, Arity, Dead))
            return false;
        return true;
      }
      if (!callsAllowDrop(A->getFn(), Name, Arity, Dead))
        return false;
      for (const Term *Arg : A->getArgs())
        if (!callsAllowDrop(Arg, Name, Arity, Dead))
          return false;
      return true;
    }
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        if (P.Name == Name)
          return true; // Shadowed: inner occurrences are another binding.
      return callsAllowDrop(A->getBody(), Name, Arity, Dead);
    }
    case TermKind::TyAbs:
      return callsAllowDrop(cast<TyAbsTerm>(T)->getBody(), Name, Arity, Dead);
    case TermKind::TyApp:
      // `f[τ]` is a non-call use of f.
      return callsAllowDrop(cast<TyAppTerm>(T)->getFn(), Name, Arity, Dead);
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      if (!callsAllowDrop(L->getInit(), Name, Arity, Dead))
        return false;
      return L->getName() == Name ||
             callsAllowDrop(L->getBody(), Name, Arity, Dead);
    }
    case TermKind::Tuple:
      for (const Term *E : cast<TupleTerm>(T)->getElements())
        if (!callsAllowDrop(E, Name, Arity, Dead))
          return false;
      return true;
    case TermKind::Nth:
      return callsAllowDrop(cast<NthTerm>(T)->getTuple(), Name, Arity, Dead);
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      return callsAllowDrop(I->getCond(), Name, Arity, Dead) &&
             callsAllowDrop(I->getThen(), Name, Arity, Dead) &&
             callsAllowDrop(I->getElse(), Name, Arity, Dead);
    }
    case TermKind::Fix:
      return callsAllowDrop(cast<FixTerm>(T)->getOperand(), Name, Arity,
                            Dead);
    }
    return false;
  }

  /// Rewrites every direct call of \p Name to drop the \p Dead argument
  /// positions.  Only sound after callsAllowDrop accepted.
  const Term *dropCallArgs(const Term *T, const std::string &Name,
                           const std::vector<size_t> &Dead) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const auto *V = dyn_cast<VarTerm>(A->getFn());
      bool IsCall = V && V->getName() == Name;
      std::vector<const Term *> Args;
      bool Changed = IsCall;
      for (size_t I = 0; I != A->getArgs().size(); ++I) {
        if (IsCall &&
            std::find(Dead.begin(), Dead.end(), I) != Dead.end())
          continue;
        const Term *NA = dropCallArgs(A->getArgs()[I], Name, Dead);
        Changed |= NA != A->getArgs()[I];
        Args.push_back(NA);
      }
      const Term *Fn = IsCall ? A->getFn() : dropCallArgs(A->getFn(), Name, Dead);
      Changed |= Fn != A->getFn();
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        if (P.Name == Name)
          return T;
      const Term *Body = dropCallArgs(A->getBody(), Name, Dead);
      return Body == A->getBody() ? T : Arena.makeAbs(A->getParams(), Body);
    }
    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = dropCallArgs(A->getBody(), Name, Dead);
      return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
    }
    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = dropCallArgs(A->getFn(), Name, Dead);
      return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
    }
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = dropCallArgs(L->getInit(), Name, Dead);
      const Term *Body = L->getName() == Name
                             ? L->getBody()
                             : dropCallArgs(L->getBody(), Name, Dead);
      if (Init == L->getInit() && Body == L->getBody())
        return T;
      return Arena.makeLet(L->getName(), Init, Body);
    }
    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = dropCallArgs(E, Name, Dead);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }
    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = dropCallArgs(N->getTuple(), Name, Dead);
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = dropCallArgs(I->getCond(), Name, Dead);
      const Term *Th = dropCallArgs(I->getThen(), Name, Dead);
      const Term *El = dropCallArgs(I->getElse(), Name, Dead);
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }
    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = dropCallArgs(F->getOperand(), Name, Dead);
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  /// True when every occurrence of \p Name in \p T is `nth Name k` with
  /// k < \p Size; marks the projected indices in \p Used.
  static bool onlyProjected(const Term *T, const std::string &Name,
                            size_t Size, std::vector<bool> &Used) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
      return true;
    case TermKind::Var:
      return cast<VarTerm>(T)->getName() != Name;
    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      if (const auto *V = dyn_cast<VarTerm>(N->getTuple());
          V && V->getName() == Name) {
        if (N->getIndex() >= Size)
          return false;
        Used[N->getIndex()] = true;
        return true;
      }
      return onlyProjected(N->getTuple(), Name, Size, Used);
    }
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        if (P.Name == Name)
          return true;
      return onlyProjected(A->getBody(), Name, Size, Used);
    }
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      if (!onlyProjected(A->getFn(), Name, Size, Used))
        return false;
      for (const Term *Arg : A->getArgs())
        if (!onlyProjected(Arg, Name, Size, Used))
          return false;
      return true;
    }
    case TermKind::TyAbs:
      return onlyProjected(cast<TyAbsTerm>(T)->getBody(), Name, Size, Used);
    case TermKind::TyApp:
      return onlyProjected(cast<TyAppTerm>(T)->getFn(), Name, Size, Used);
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      if (!onlyProjected(L->getInit(), Name, Size, Used))
        return false;
      return L->getName() == Name ||
             onlyProjected(L->getBody(), Name, Size, Used);
    }
    case TermKind::Tuple:
      for (const Term *E : cast<TupleTerm>(T)->getElements())
        if (!onlyProjected(E, Name, Size, Used))
          return false;
      return true;
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      return onlyProjected(I->getCond(), Name, Size, Used) &&
             onlyProjected(I->getThen(), Name, Size, Used) &&
             onlyProjected(I->getElse(), Name, Size, Used);
    }
    case TermKind::Fix:
      return onlyProjected(cast<FixTerm>(T)->getOperand(), Name, Size, Used);
    }
    return false;
  }

  /// Reindexes `nth Name k` through \p Remap (shadowing-aware; only
  /// sound after onlyProjected accepted).
  const Term *remapNths(const Term *T, const std::string &Name,
                        const std::vector<unsigned> &Remap) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;
    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      if (const auto *V = dyn_cast<VarTerm>(N->getTuple());
          V && V->getName() == Name)
        return Remap[N->getIndex()] == N->getIndex()
                   ? T
                   : Arena.makeNth(N->getTuple(), Remap[N->getIndex()]);
      const Term *Tu = remapNths(N->getTuple(), Name, Remap);
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }
    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      for (const ParamBinding &P : A->getParams())
        if (P.Name == Name)
          return T;
      const Term *Body = remapNths(A->getBody(), Name, Remap);
      return Body == A->getBody() ? T : Arena.makeAbs(A->getParams(), Body);
    }
    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const Term *Fn = remapNths(A->getFn(), Name, Remap);
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = remapNths(Arg, Name, Remap);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }
    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = remapNths(A->getBody(), Name, Remap);
      return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
    }
    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = remapNths(A->getFn(), Name, Remap);
      return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
    }
    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = remapNths(L->getInit(), Name, Remap);
      const Term *Body = L->getName() == Name
                             ? L->getBody()
                             : remapNths(L->getBody(), Name, Remap);
      if (Init == L->getInit() && Body == L->getBody())
        return T;
      return Arena.makeLet(L->getName(), Init, Body);
    }
    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = remapNths(E, Name, Remap);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }
    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = remapNths(I->getCond(), Name, Remap);
      const Term *Th = remapNths(I->getThen(), Name, Remap);
      const Term *El = remapNths(I->getElse(), Name, Remap);
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }
    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = remapNths(F->getOperand(), Name, Remap);
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  static std::vector<size_t> deadParams(const AbsTerm *Abs) {
    std::vector<size_t> Dead;
    for (size_t I = 0; I != Abs->getParams().size(); ++I)
      if (!paramUsed(Abs, I))
        Dead.push_back(I);
    return Dead;
  }

  static std::vector<ParamBinding>
  keepParams(const AbsTerm *Abs, const std::vector<size_t> &Dead) {
    std::vector<ParamBinding> Params;
    for (size_t I = 0; I != Abs->getParams().size(); ++I)
      if (std::find(Dead.begin(), Dead.end(), I) == Dead.end())
        Params.push_back(Abs->getParams()[I]);
    return Params;
  }

  const Term *visit(const Term *T) {
    switch (T->getKind()) {
    case TermKind::IntLit:
    case TermKind::BoolLit:
    case TermKind::Var:
      return T;

    case TermKind::App: {
      const auto *A = cast<AppTerm>(T);
      const Term *Fn = visit(A->getFn());
      std::vector<const Term *> Args;
      bool Changed = Fn != A->getFn();
      for (const Term *Arg : A->getArgs()) {
        const Term *NA = visit(Arg);
        Changed |= NA != Arg;
        Args.push_back(NA);
      }
      // Immediate dictionary application with dead parameters.
      if (const auto *Abs = dyn_cast<AbsTerm>(Fn);
          Abs && Abs->getParams().size() == Args.size()) {
        std::vector<size_t> Dead = deadParams(Abs);
        Dead.erase(std::remove_if(Dead.begin(), Dead.end(),
                                  [&](size_t I) {
                                    return !isPureTerm(Args[I]);
                                  }),
                   Dead.end());
        if (!Dead.empty() && Dead.size() < Args.size()) {
          std::vector<const Term *> Kept;
          for (size_t I = 0; I != Args.size(); ++I)
            if (std::find(Dead.begin(), Dead.end(), I) == Dead.end())
              Kept.push_back(Args[I]);
          Counters.DictParamsEliminated += Dead.size();
          return Arena.makeApp(Arena.makeAbs(keepParams(Abs, Dead),
                                             Abs->getBody()),
                               std::move(Kept));
        }
      }
      return Changed ? Arena.makeApp(Fn, std::move(Args)) : T;
    }

    case TermKind::Let: {
      const auto *L = cast<LetTerm>(T);
      const Term *Init = visit(L->getInit());
      const Term *Body = visit(L->getBody());

      // Let-bound function with dead dictionary parameters, all of
      // whose uses are direct full-arity calls.
      if (const auto *Abs = dyn_cast<AbsTerm>(Init);
          Abs && Abs->getParams().size() > 1) {
        std::vector<size_t> Dead = deadParams(Abs);
        if (!Dead.empty() && Dead.size() < Abs->getParams().size() &&
            callsAllowDrop(Body, L->getName(), Abs->getParams().size(),
                           Dead)) {
          const Term *NewInit =
              Arena.makeAbs(keepParams(Abs, Dead), Abs->getBody());
          const Term *NewBody = dropCallArgs(Body, L->getName(), Dead);
          Counters.DictParamsEliminated += Dead.size();
          return Arena.makeLet(L->getName(), NewInit, NewBody);
        }
      }

      // Pure dictionary record with unprojected fields.
      if (const auto *Tu = dyn_cast<TupleTerm>(Init);
          Tu && Tu->getElements().size() > 1 && isPureTerm(Init)) {
        size_t Size = Tu->getElements().size();
        std::vector<bool> Used(Size, false);
        if (onlyProjected(Body, L->getName(), Size, Used)) {
          std::vector<unsigned> Remap(Size, 0);
          std::vector<const Term *> Kept;
          for (size_t I = 0; I != Size; ++I) {
            Remap[I] = Kept.size();
            if (Used[I])
              Kept.push_back(Tu->getElements()[I]);
          }
          if (!Kept.empty() && Kept.size() < Size) {
            Counters.DictFieldsEliminated += Size - Kept.size();
            return Arena.makeLet(L->getName(),
                                 Arena.makeTuple(std::move(Kept)),
                                 remapNths(Body, L->getName(), Remap));
          }
        }
      }

      if (Init == L->getInit() && Body == L->getBody())
        return T;
      return Arena.makeLet(L->getName(), Init, Body);
    }

    case TermKind::Abs: {
      const auto *A = cast<AbsTerm>(T);
      const Term *Body = visit(A->getBody());
      return Body == A->getBody() ? T : Arena.makeAbs(A->getParams(), Body);
    }

    case TermKind::TyAbs: {
      const auto *A = cast<TyAbsTerm>(T);
      const Term *Body = visit(A->getBody());
      return Body == A->getBody() ? T : Arena.makeTyAbs(A->getParams(), Body);
    }

    case TermKind::TyApp: {
      const auto *A = cast<TyAppTerm>(T);
      const Term *Fn = visit(A->getFn());
      return Fn == A->getFn() ? T : Arena.makeTyApp(Fn, A->getTypeArgs());
    }

    case TermKind::Tuple: {
      const auto *Tu = cast<TupleTerm>(T);
      std::vector<const Term *> Elems;
      bool Changed = false;
      for (const Term *E : Tu->getElements()) {
        const Term *NE = visit(E);
        Changed |= NE != E;
        Elems.push_back(NE);
      }
      return Changed ? Arena.makeTuple(std::move(Elems)) : T;
    }

    case TermKind::Nth: {
      const auto *N = cast<NthTerm>(T);
      const Term *Tu = visit(N->getTuple());
      return Tu == N->getTuple() ? T : Arena.makeNth(Tu, N->getIndex());
    }

    case TermKind::If: {
      const auto *I = cast<IfTerm>(T);
      const Term *C = visit(I->getCond());
      const Term *Th = visit(I->getThen());
      const Term *El = visit(I->getElse());
      if (C == I->getCond() && Th == I->getThen() && El == I->getElse())
        return T;
      return Arena.makeIf(C, Th, El);
    }

    case TermKind::Fix: {
      const auto *F = cast<FixTerm>(T);
      const Term *Op = visit(F->getOperand());
      return Op == F->getOperand() ? T : Arena.makeFix(Op);
    }
    }
    return T;
  }

  TermArena &Arena;
  SpecializeCounters &Counters;
};

} // namespace

//===----------------------------------------------------------------------===//
// SpecializePasses
//===----------------------------------------------------------------------===//

SpecializePasses::SpecializePasses(
    TermArena &Arena, TypeContext &Ctx,
    const std::unordered_set<std::string> *HoistableTyApps)
    : Arena(Arena), Ctx(Ctx), Hoistable(HoistableTyApps) {}

SpecializePasses::~SpecializePasses() = default;

const Term *SpecializePasses::runTypeAppSpecialize(const Term *T,
                                                   size_t NodeBudget,
                                                   size_t MaxTypeArgSize) {
  TypeAppSpecializer Pass(Arena, Ctx, Hoistable, Counters, NextCloneId,
                          NodeBudget, MaxTypeArgSize);
  return Pass.run(T);
}

const Term *SpecializePasses::runDevirtualizeDicts(const Term *T) {
  DictDevirtualizer Pass(Arena, Counters, NextAnchorId, NextBetaId,
                         NextRename);
  return Pass.run(T);
}

const Term *SpecializePasses::runEliminateDeadDicts(const Term *T) {
  DeadDictEliminator Pass(Arena, Counters);
  return Pass.run(T);
}
