//===- server/Server.h - The persistent fgcd daemon -------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived compiler server: a Unix-domain-socket listener plus a
/// fixed worker pool.  Each accepted connection is one protocol
/// *session* (server/Session.h) served to completion by a worker — the
/// natural unit, since sessions are single-client by design and
/// workers never share compiler state.  Up to `Threads` sessions run
/// concurrently; further connections queue until a worker frees up
/// (documented in docs/PROTOCOL.md §2).
///
/// All sessions share the server's one ArtifactCache, so the daemon
/// warms up: the first `check` of a program compiles, every later
/// byte-identical `check` — from any session — is a string lookup.
/// BenchServer measures the resulting cold/warm latency split.
///
/// A `shutdown` request (from any session) stops the daemon: the
/// listener closes, idle workers wake and exit, in-flight sessions
/// finish their current request.  `serveStream` is the same protocol
/// loop over arbitrary iostreams — the `fgcd --stdio` mode and the
/// unit-test entry point.
///
/// Observability: `server.connections`, `server.sessions.opened`,
/// `server.requests[.<method>]`, `server.errors.<code>`,
/// `server.artifact_cache.{hits,misses,evictions}`; timers
/// `server.request`, `server.check`, `server.run`, `server.eval`.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SERVER_SERVER_H
#define FG_SERVER_SERVER_H

#include "server/Session.h"
#include <condition_variable>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fg {
namespace server {

struct ServerOptions {
  std::string SocketPath;      ///< Unix socket to bind.
  unsigned Threads = 0;        ///< Worker pool size; 0 = hardware threads.
  size_t CacheEntries = 4096;  ///< Artifact-cache capacity.
  Session::Options SessionOpts;
};

/// The daemon.  start() binds and spawns the acceptor + workers;
/// wait() blocks until a `shutdown` request or stop(); stop() is safe
/// from any thread.
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts the acceptor and worker threads.
  /// Returns false with \p Error set when the socket cannot be bound.
  bool start(std::string &Error);

  /// Blocks until the server stops (shutdown request or stop()).
  void wait();

  /// Flags shutdown and unblocks the acceptor/workers without joining
  /// (safe from worker threads — the `shutdown` request path).
  void requestStop();

  /// Initiates shutdown and joins every thread.  Idempotent; must be
  /// called on the thread that owns the Server.
  void stop();

  const std::string &socketPath() const { return Opts.SocketPath; }
  const std::shared_ptr<ArtifactCache> &cache() const { return Cache; }

private:
  void acceptLoop();
  void workerLoop();
  void serveConnection(int Fd);

  ServerOptions Opts;
  std::shared_ptr<ArtifactCache> Cache;
  int ListenFd = -1;
  std::vector<std::thread> Workers;
  std::thread Acceptor;
  std::mutex Mu;
  std::condition_variable QueueCv;   ///< Pending-connection arrivals.
  std::condition_variable StopCv;    ///< wait() wake-up.
  std::deque<int> Pending;           ///< Accepted, unserved connections.
  bool Stopping = false;
  bool Started = false;
};

/// Serves one session over an iostream pair (the `--stdio` mode): one
/// request line in, one response line out, until EOF or a `shutdown`
/// request.  Returns true when shutdown was requested.
bool serveStream(Session &S, std::istream &In, std::ostream &Out);

} // namespace server
} // namespace fg

#endif // FG_SERVER_SERVER_H
