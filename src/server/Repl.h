//===- server/Repl.h - Interactive fgcd REPL --------------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interactive read-eval-print loop behind `fgcd --repl`: a thin
/// human-facing veneer over server/Session.h, in the style of cling's
/// MetaProcessor.  Plain input lines are fed to Session::eval — an
/// expression evaluates and prints `value : type`, a top-level
/// declaration (let / concept / model / type / use) is checked and
/// accumulated into the session scope for every later line.  Lines
/// starting with `:` are meta-commands (`:type`, `:dump-bytecode`,
/// `:load`, ...); docs/REPL.md documents all of them with a worked
/// generic-programming transcript.
///
/// Output is deliberately plain and stable — ReplTest pins golden
/// transcripts against it.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SERVER_REPL_H
#define FG_SERVER_REPL_H

#include "server/Session.h"
#include <iosfwd>

namespace fg {
namespace server {

struct ReplOptions {
  bool Interactive = true; ///< Print the banner and `fg> ` prompts.
};

/// Runs the REPL until `:quit` or EOF.  Returns the process exit code.
int runRepl(Session &S, std::istream &In, std::ostream &Out,
            const ReplOptions &Opts);

} // namespace server
} // namespace fg

#endif // FG_SERVER_REPL_H
