//===- server/Repl.cpp - Interactive fgcd REPL ----------------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "server/Repl.h"
#include "support/Stats.h"
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

using namespace fg;
using namespace fg::server;

namespace {

const char *Banner =
    "fgcd REPL — F_G interactive session (:help for commands)\n";

const char *Help =
    "Commands:\n"
    "  :help, :h             show this help\n"
    "  :quit, :q             leave the REPL\n"
    "  :type EXPR, :t EXPR   show the type of EXPR in the current scope\n"
    "  :dump-bytecode EXPR, :bc EXPR\n"
    "                        compile EXPR to VM bytecode and disassemble\n"
    "  :load PATH            run a .fg file and splice its declarations\n"
    "                        (and its imports') into the current scope\n"
    "  :decls                print the accumulated declaration scope\n"
    "  :reset                drop the accumulated scope\n"
    "  :stats                print compiler statistics counters\n"
    "Anything else: a top-level declaration (let / concept / model /\n"
    "type / use) extends the scope; an expression evaluates in it.\n";

/// First `:word` and the rest of the line, trimmed.
void splitCommand(const std::string &Line, std::string &Cmd,
                  std::string &Arg) {
  size_t I = 0;
  while (I < Line.size() && !std::isspace(static_cast<unsigned char>(Line[I])))
    ++I;
  Cmd = Line.substr(0, I);
  while (I < Line.size() && std::isspace(static_cast<unsigned char>(Line[I])))
    ++I;
  size_t End = Line.size();
  while (End > I && std::isspace(static_cast<unsigned char>(Line[End - 1])))
    --End;
  Arg = Line.substr(I, End - I);
}

/// Prints an Outcome the human way: diagnostics / errors verbatim,
/// otherwise whatever payload the request produced.
void printOutcome(std::ostream &Out, const Outcome &O) {
  if (!O.Success) {
    if (!O.Diagnostics.empty()) {
      Out << O.Diagnostics;
      if (O.Diagnostics.back() != '\n')
        Out << "\n";
    }
    if (!O.Error.empty())
      Out << "error: " << O.Error << "\n";
    if (O.Diagnostics.empty() && O.Error.empty())
      Out << "error: compilation failed\n";
    return;
  }
  if (O.IsDecl) {
    Out << "defined " << O.DeclKind;
    if (!O.DeclName.empty())
      Out << " " << O.DeclName;
    if (!O.Type.empty())
      Out << " : " << O.Type;
    Out << "\n";
    return;
  }
  if (!O.Bytecode.empty()) {
    Out << O.Bytecode;
    if (O.Bytecode.back() != '\n')
      Out << "\n";
    return;
  }
  if (!O.Value.empty() && !O.Type.empty()) {
    Out << O.Value << " : " << O.Type << "\n";
    return;
  }
  if (!O.Type.empty()) {
    Out << O.Type << "\n";
    return;
  }
  if (!O.Value.empty())
    Out << O.Value << "\n";
}

} // namespace

int fg::server::runRepl(Session &S, std::istream &In, std::ostream &Out,
                        const ReplOptions &Opts) {
  if (Opts.Interactive)
    Out << Banner;
  std::string Line;
  while (true) {
    if (Opts.Interactive)
      Out << "fg> " << std::flush;
    if (!std::getline(In, Line))
      break;
    // Trim surrounding whitespace; blank lines are prompts only.
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Line = Line.substr(B, E - B + 1);

    if (Line[0] != ':') {
      printOutcome(Out, S.eval(Line));
      continue;
    }

    std::string Cmd, Arg;
    splitCommand(Line, Cmd, Arg);
    if (Cmd == ":quit" || Cmd == ":q")
      break;
    if (Cmd == ":help" || Cmd == ":h") {
      Out << Help;
    } else if (Cmd == ":type" || Cmd == ":t") {
      if (Arg.empty()) {
        Out << "usage: :type EXPR\n";
        continue;
      }
      printOutcome(Out, S.typeOf(Arg));
    } else if (Cmd == ":dump-bytecode" || Cmd == ":bc") {
      if (Arg.empty()) {
        Out << "usage: :dump-bytecode EXPR\n";
        continue;
      }
      // Compile the expression inside the accumulated scope, exactly
      // like evaluation would.
      printOutcome(Out, S.dumpBytecode(S.decls() + Arg, "<repl>"));
    } else if (Cmd == ":load") {
      if (Arg.empty()) {
        Out << "usage: :load PATH\n";
        continue;
      }
      Outcome O = S.load(Arg);
      if (!O.Success) {
        printOutcome(Out, O);
      } else {
        Out << "loaded " << Arg;
        if (!O.Value.empty())
          Out << " — value " << O.Value
              << (O.Type.empty() ? "" : " : " + O.Type);
        Out << "\n";
        // The declarations loaded, but evaluating the file hit a
        // runtime error — surface it instead of swallowing it.
        if (!O.Error.empty())
          Out << "error: " << O.Error << "\n";
      }
    } else if (Cmd == ":decls") {
      if (S.decls().empty())
        Out << "(no declarations)\n";
      else
        Out << S.decls();
    } else if (Cmd == ":reset") {
      S.reset();
      Out << "scope reset\n";
    } else if (Cmd == ":stats") {
      std::ostringstream OS;
      stats::Statistics::global().printJson(OS);
      Out << OS.str();
      if (!OS.str().empty() && OS.str().back() != '\n')
        Out << "\n";
    } else {
      Out << "unknown command " << Cmd << " (:help for commands)\n";
    }
  }
  if (Opts.Interactive)
    Out << "\n";
  return 0;
}
