//===- server/Session.h - One compiler-service session ----------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session object at the heart of `fgcd`: everything one client —
/// a protocol connection (server/Protocol.h) or an interactive REPL
/// (server/Repl.h) — accumulates across requests.  Both surfaces are
/// thin wrappers over the same methods, cling/MetaProcessor-style.
///
/// Isolation and sharing, the two invariants the whole server design
/// hangs on:
///
///  * **Per-session isolation.**  A session owns its incremental
///    declaration scope and nothing else long-lived.  Every request
///    compiles in a *fresh* Frontend (arenas, interned types,
///    diagnostics all request-local), so no compiler state is ever
///    shared between sessions, and a wedged compilation cannot poison
///    the next request.  Constructing a Frontend is cheap (prelude
///    setup); the expensive, shareable part is what the cache holds.
///
///  * **Shared immutable artifacts.**  Sessions share one
///    ArtifactCache of plain-string compilation results keyed by
///    content hash.  Byte-identical inputs (the editor fleet re-checking
///    an unchanged file, N CI jobs checking the same module) hit
///    without recompiling, across sessions and threads.
///
/// The incremental REPL scope is *textual*: declarations accumulate as
/// the source prefix `d1 in d2 in ... in`, and each expression
/// re-elaborates `prefix + expr` from scratch.  Re-elaboration keeps
/// the semantics exactly the batch language semantics — shadowing,
/// model redefinition, `use` activation all behave as nested
/// declarations because they *are* nested declarations — and the
/// artifact cache absorbs the repeated prefix cost for type queries.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SERVER_SESSION_H
#define FG_SERVER_SESSION_H

#include "server/ArtifactCache.h"
#include <memory>
#include <string>
#include <vector>

namespace fg {
namespace server {

/// What one session request produced.  `Success` is about the
/// *compilation*: a program that fails to typecheck yields Success =
/// false with Diagnostics, which at the protocol layer is still a
/// well-formed response, not a protocol error.  `Error` carries
/// runtime/internal failures (evaluation errors, unreadable files).
struct Outcome {
  bool Success = false;
  bool Cached = false;      ///< Served from the shared artifact cache.
  std::string Type;         ///< Rendered F_G type.
  std::string Value;        ///< Rendered value (run/eval).
  std::string Bytecode;     ///< VM disassembly (dump-bytecode).
  std::string Diagnostics;  ///< Rendered compile diagnostics.
  std::string Error;        ///< Runtime / I-O error, empty otherwise.
  /// The requested backend cannot run in this environment (the AOT
  /// backend without a host C++ compiler).  Error carries the one-line
  /// reason; the protocol layer turns this into a structured
  /// `backend_unavailable` error, and the outcome is never cached —
  /// installing a compiler must take effect without a server restart.
  bool BackendUnavailable = false;
  bool IsDecl = false;      ///< REPL eval consumed a declaration.
  std::string DeclKind;     ///< let/concept/model/type/use for IsDecl.
  std::string DeclName;     ///< Declared name when recoverable.
};

/// One client's session.  Not thread-safe (each session belongs to one
/// connection); distinct sessions are safe to run concurrently.
class Session {
public:
  struct Options {
    /// `-I` search paths for path-based requests and `:load`.
    std::vector<std::string> SearchPaths;
  };

  explicit Session(std::shared_ptr<ArtifactCache> Cache,
                   Options Opts = Options());

  /// Typechecks a self-contained program (no module header).  Cached.
  Outcome check(const std::string &Source,
                const std::string &Name = "<check>");

  /// Typechecks the file at \p Path; module headers and imports are
  /// resolved (whole-program link).  Cached, keyed on the content hash
  /// of the entire import cone.
  Outcome checkPath(const std::string &Path);

  /// Compiles and evaluates.  \p Backend is any registered backend
  /// (tree/closure/vm/aot); \p OptLevel 0, 1 (-O1) or 2 (-O2; for the
  /// in-process engines, 1 and 2 evaluate the optimized term on the
  /// tree engine; aot always compiles the -O2-specialized term, like
  /// the driver).  Cached (evaluation is deterministic — F_G is pure).
  /// With \p Path nonempty the program is loaded from disk with
  /// imports resolved and \p Source is ignored.
  Outcome run(const std::string &Source, const std::string &Name,
              const std::string &Backend = "tree", int OptLevel = 0,
              const std::string &Path = "");

  /// Type of \p Expr inside this session's incremental scope.  Cached.
  Outcome typeOf(const std::string &Expr);

  /// Compiles a program to VM bytecode and disassembles it.  Cached.
  Outcome dumpBytecode(const std::string &Source,
                       const std::string &Name = "<bytecode>");

  /// One REPL input: a top-level declaration (`let x = 5`,
  /// `model Eq<int> { ... }`, `use name`, ...) extends the session
  /// scope; anything else is evaluated as an expression in that scope
  /// on \p Backend (any registered backend).  See docs/REPL.md for the
  /// classification rule.
  Outcome eval(const std::string &Input, const std::string &Backend = "tree");

  /// `:load`: evaluates the file (imports resolved) and splices its —
  /// and its imports' — declaration spines into the session scope.
  Outcome load(const std::string &Path);

  /// The accumulated declaration prefix (`:decls`, tests).
  const std::string &decls() const { return Decls; }

  /// Drops the incremental scope (`:reset`).  The shared artifact
  /// cache is unaffected.
  void reset() { Decls.clear(); }

  ArtifactCache &cache() { return *Cache; }

private:
  /// check() body under an explicit cache-key kind tag.
  Outcome checkImpl(const std::string &Source, const std::string &Name,
                    const std::string &KeyKind, uint64_t Salt);

  std::shared_ptr<ArtifactCache> Cache;
  Options Opts;
  std::string Decls; ///< Textual incremental scope; see file comment.
};

} // namespace server
} // namespace fg

#endif // FG_SERVER_SESSION_H
