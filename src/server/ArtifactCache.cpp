//===- server/ArtifactCache.cpp - Shared content-hash artifact cache ------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "server/ArtifactCache.h"
#include "modules/Interface.h"
#include "support/Stats.h"

using namespace fg;
using namespace fg::server;

ArtifactPtr ArtifactCache::get(const CacheKey &Key) const {
  static std::atomic<uint64_t> &Hits =
      stats::Statistics::global().counter("server.artifact_cache.hits");
  static std::atomic<uint64_t> &Misses =
      stats::Statistics::global().counter("server.artifact_cache.misses");
  static std::atomic<uint64_t> &Collisions =
      stats::Statistics::global().counter("server.artifact_cache.collisions");
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key.Hash);
  if (It == Map.end()) {
    ++Misses;
    return nullptr;
  }
  const CacheKey &Stored = It->second.Key;
  if (Stored.Kind != Key.Kind || Stored.Payload != Key.Payload ||
      Stored.Salt != Key.Salt) {
    // FNV-1a hash collision with a different program: serving the
    // stored artifact would be wrong, so treat it as a miss.
    ++Collisions;
    ++Misses;
    return nullptr;
  }
  ++Hits;
  return It->second.A;
}

void ArtifactCache::put(const CacheKey &Key, ArtifactPtr A) {
  static std::atomic<uint64_t> &Evictions =
      stats::Statistics::global().counter("server.artifact_cache.evictions");
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Map.emplace(Key.Hash, Entry{Key, std::move(A)}).second)
    return; // First writer won (or a colliding key lost the slot).
  InsertionOrder.push_back(Key.Hash);
  while (Map.size() > MaxEntries) {
    Map.erase(InsertionOrder.front());
    InsertionOrder.pop_front();
    ++Evictions;
  }
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
  InsertionOrder.clear();
}

size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

CacheKey ArtifactCache::key(std::string_view Kind, std::string_view Payload,
                            uint64_t Salt) {
  uint64_t H = modules::fnv1a64(Kind);
  // Separator byte: key("ab","c") must differ from key("a","bc").
  H = modules::fnv1a64(std::string_view("\0", 1), H);
  H = modules::fnv1a64(Payload, H);
  char SaltBytes[8];
  for (int I = 0; I < 8; ++I)
    SaltBytes[I] = static_cast<char>((Salt >> (8 * I)) & 0xff);
  H = modules::fnv1a64(std::string_view(SaltBytes, 8), H);
  return CacheKey{std::string(Kind), std::string(Payload), Salt, H};
}
