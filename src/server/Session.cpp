//===- server/Session.cpp - One compiler-service session ------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "server/Session.h"
#include "modules/Loader.h"
#include "support/Stats.h"
#include "syntax/Frontend.h"
#include "vm/Disasm.h"
#include "vm/Emit.h"
#include <cctype>
#include <fstream>
#include <sstream>

using namespace fg;
using namespace fg::server;

namespace {

/// First word of \p S after leading whitespace (REPL input
/// classification; see docs/REPL.md).
std::string firstWord(const std::string &S) {
  size_t I = S.find_first_not_of(" \t\r\n");
  if (I == std::string::npos)
    return "";
  size_t E = I;
  while (E < S.size() &&
         (std::isalnum(static_cast<unsigned char>(S[E])) || S[E] == '_'))
    ++E;
  return S.substr(I, E - I);
}

bool isDeclKeyword(const std::string &W) {
  return W == "let" || W == "concept" || W == "model" || W == "type" ||
         W == "use";
}

/// Best-effort declared-name extraction for REPL feedback: the next
/// identifier after the keyword (for `model [name] ...`, the bracketed
/// name).
std::string declaredName(const std::string &Input, const std::string &Kind) {
  size_t I = Input.find(Kind) + Kind.size();
  while (I < Input.size() &&
         (std::isspace(static_cast<unsigned char>(Input[I])) ||
          Input[I] == '['))
    ++I;
  size_t E = I;
  while (E < Input.size() &&
         (std::isalnum(static_cast<unsigned char>(Input[E])) ||
          Input[E] == '_'))
    ++E;
  return Input.substr(I, E - I);
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

/// Rejects sources with a module header on source-text requests
/// (imports need a filesystem anchor; the `path` request form has
/// one).  Returns false with \p Out filled in when rejected.
bool rejectModuleHeader(const std::string &Source, const std::string &Name,
                        Outcome &Out) {
  ModuleHeader Header;
  std::string Error;
  if (!modules::ModuleLoader::scanHeader(Name, Source, Header, Error)) {
    Out.Success = false;
    Out.Diagnostics = Error + "\n";
    return false;
  }
  if (Header.HasModuleDecl || !Header.Imports.empty()) {
    Out.Success = false;
    Out.Error = "source has a module header; submit it as a file via the "
                "`path` parameter so imports can be resolved";
    return false;
  }
  return true;
}

Outcome fromArtifact(const ArtifactPtr &A) {
  Outcome O;
  O.Success = A->Success;
  O.Cached = true;
  O.Type = A->Type;
  O.Value = A->Value;
  O.Bytecode = A->Bytecode;
  O.Diagnostics = A->Diagnostics;
  O.Error = A->Error;
  return O;
}

ArtifactPtr toArtifact(const Outcome &O) {
  auto A = std::make_shared<Artifact>();
  A->Success = O.Success;
  A->Type = O.Type;
  A->Value = O.Value;
  A->Bytecode = O.Bytecode;
  A->Diagnostics = O.Diagnostics;
  A->Error = O.Error;
  return A;
}

} // namespace

Session::Session(std::shared_ptr<ArtifactCache> Cache, Options Opts)
    : Cache(std::move(Cache)), Opts(std::move(Opts)) {
  stats::Statistics::global().add("server.sessions.opened");
}

Outcome Session::checkImpl(const std::string &Source, const std::string &Name,
                           const std::string &KeyKind, uint64_t Salt) {
  CacheKey Key = ArtifactCache::key(KeyKind, Source, Salt);
  if (ArtifactPtr A = Cache->get(Key))
    return fromArtifact(A);

  stats::ScopedTimer Timer("server.check");
  Outcome O;
  Frontend FE;
  CompileOutput Out = FE.compile(Name, Source);
  O.Success = Out.Success;
  if (Out.Success)
    O.Type = typeToString(Out.FgType);
  else
    O.Diagnostics = FE.getDiags().render();
  Cache->put(Key, toArtifact(O));
  return O;
}

Outcome Session::check(const std::string &Source, const std::string &Name) {
  Outcome Rejected;
  if (!rejectModuleHeader(Source, Name, Rejected))
    return Rejected;
  return checkImpl(Source, Name, "check:v1", 0);
}

Outcome Session::checkPath(const std::string &Path) {
  modules::ModuleLoader::Options LO;
  LO.SearchPaths = Opts.SearchPaths;
  modules::ModuleLoader Loader(LO);
  std::string Root;
  Outcome O;
  if (!Loader.loadFile(Path, Root, O.Error))
    return O;

  // The key covers the entire import cone, so an edit in any imported
  // file invalidates — the same discipline as `.fgi` interface hashes.
  CacheKey Key =
      ArtifactCache::key("check-path:v1", "", Loader.contentHash(Root));
  if (ArtifactPtr A = Cache->get(Key))
    return fromArtifact(A);

  stats::ScopedTimer Timer("server.check");
  Frontend FE;
  std::string Error;
  const Term *Program = Loader.link(FE, Root, Error);
  if (!Program) {
    O.Success = false;
    O.Diagnostics = Error + "\n" + FE.getDiags().render();
    Cache->put(Key, toArtifact(O));
    return O;
  }
  CompileOutput Out = FE.compileTerm(Program);
  O.Success = Out.Success;
  if (Out.Success)
    O.Type = typeToString(Out.FgType);
  else
    O.Diagnostics = FE.getDiags().render();
  Cache->put(Key, toArtifact(O));
  return O;
}

Outcome Session::run(const std::string &Source, const std::string &Name,
                     const std::string &Backend, int OptLevel,
                     const std::string &Path) {
  Outcome O;
  std::string KeyKind = "run:v1:" + Backend + ":" + std::to_string(OptLevel);
  CacheKey Key;
  modules::ModuleLoader::Options LO;
  LO.SearchPaths = Opts.SearchPaths;
  modules::ModuleLoader Loader(LO);
  std::string Root;
  if (!Path.empty()) {
    if (!Loader.loadFile(Path, Root, O.Error))
      return O;
    Key = ArtifactCache::key(KeyKind + ":path", "", Loader.contentHash(Root));
  } else {
    if (!rejectModuleHeader(Source, Name, O))
      return O;
    Key = ArtifactCache::key(KeyKind, Source, 0);
  }
  if (ArtifactPtr A = Cache->get(Key))
    return fromArtifact(A);

  stats::ScopedTimer Timer("server.run");
  Frontend FE;
  CompileOutput Out;
  if (!Path.empty()) {
    std::string Error;
    const Term *Program = Loader.link(FE, Root, Error);
    if (!Program) {
      O.Success = false;
      O.Diagnostics = Error + "\n" + FE.getDiags().render();
      Cache->put(Key, toArtifact(O));
      return O;
    }
    Out = FE.compileTerm(Program);
  } else {
    Out = FE.compile(Name, Source);
  }
  if (!Out.Success) {
    O.Success = false;
    O.Diagnostics = FE.getDiags().render();
    Cache->put(Key, toArtifact(O));
    return O;
  }
  O.Success = true;
  O.Type = typeToString(Out.FgType);

  sf::EvalResult R;
  if (Backend == "aot") {
    std::string WhyNot;
    if (!aot::toolchainAvailable(aot::ToolchainOptions(), &WhyNot)) {
      O.BackendUnavailable = true;
      O.Error = WhyNot;
      return O; // Deliberately uncached; see Outcome::BackendUnavailable.
    }
    // Match the driver: the AOT backend always compiles the fully
    // specialized term — that is the artifact whose zero-overhead
    // claim the backend exists to measure.
    sf::OptimizeStats Stats;
    sf::OptimizeOptions OO;
    OO.Specialize = sf::SpecializeLevel::Full;
    const sf::Term *T = FE.optimize(Out, &Stats, OO);
    R = aot::runAot(T, FE.getPrelude());
  } else if (OptLevel > 0) {
    sf::OptimizeOptions OO;
    OO.Specialize = OptLevel >= 2 ? sf::SpecializeLevel::Full
                                  : sf::SpecializeLevel::Off;
    FE.optimize(Out, nullptr, OO);
    R = FE.runOptimized(Out);
  } else if (Backend == "vm") {
    R = FE.runVm(Out);
  } else if (Backend == "closure") {
    R = FE.runCompiled(Out);
  } else {
    R = FE.run(Out);
  }
  if (!R.ok())
    O.Error = R.Error;
  else
    O.Value = sf::valueToString(R.Val);
  Cache->put(Key, toArtifact(O));
  return O;
}

Outcome Session::typeOf(const std::string &Expr) {
  return checkImpl(Decls + Expr, "<repl>", "type:v1", 0);
}

Outcome Session::dumpBytecode(const std::string &Source,
                              const std::string &Name) {
  Outcome Rejected;
  if (!rejectModuleHeader(Source, Name, Rejected))
    return Rejected;
  CacheKey Key = ArtifactCache::key("bytecode:v1", Source, 0);
  if (ArtifactPtr A = Cache->get(Key))
    return fromArtifact(A);

  stats::ScopedTimer Timer("server.check");
  Outcome O;
  Frontend FE;
  CompileOutput Out = FE.compile(Name, Source);
  if (!Out.Success) {
    O.Success = false;
    O.Diagnostics = FE.getDiags().render();
    Cache->put(Key, toArtifact(O));
    return O;
  }
  std::string Error;
  std::shared_ptr<const vm::Chunk> Chunk =
      vm::compile(Out.SfTerm, FE.getPrelude(), &Error);
  if (!Chunk) {
    O.Success = false;
    O.Error = "cannot compile to bytecode: " + Error;
    Cache->put(Key, toArtifact(O));
    return O;
  }
  O.Success = true;
  O.Type = typeToString(Out.FgType);
  O.Bytecode = vm::disassemble(*Chunk);
  Cache->put(Key, toArtifact(O));
  return O;
}

Outcome Session::eval(const std::string &RawInput,
                      const std::string &Backend) {
  stats::ScopedTimer Timer("server.eval");
  std::string Input = trim(RawInput);
  Outcome O;
  if (Input.empty()) {
    O.Success = true;
    return O;
  }
  bool DeclCandidate = isDeclKeyword(firstWord(Input));

  // Expression attempt first: a complete expression (even one starting
  // with `let ... in ...`) evaluates; otherwise a leading declaration
  // keyword means the input extends the scope (docs/REPL.md §2).
  {
    Frontend FE;
    CompileOutput Out = FE.compile("<repl>", Decls + Input);
    if (Out.Success) {
      O.Success = true;
      O.Type = typeToString(Out.FgType);
      sf::EvalResult R;
      if (Backend == "aot") {
        std::string WhyNot;
        if (!aot::toolchainAvailable(aot::ToolchainOptions(), &WhyNot)) {
          O.BackendUnavailable = true;
          O.Error = WhyNot;
          return O;
        }
        R = FE.runAot(Out);
      } else if (Backend == "vm") {
        R = FE.runVm(Out);
      } else if (Backend == "closure") {
        R = FE.runCompiled(Out);
      } else {
        R = FE.run(Out);
      }
      if (!R.ok())
        O.Error = R.Error;
      else
        O.Value = sf::valueToString(R.Val);
      return O;
    }
    if (!DeclCandidate) {
      O.Success = false;
      O.Diagnostics = FE.getDiags().render();
      return O;
    }
  }

  // Declaration probe: the input must form a valid spine item, i.e.
  // `<scope> <input> in 0` must compile.
  Frontend FE;
  CompileOutput Probe = FE.compile("<repl>", Decls + Input + " in 0");
  if (!Probe.Success) {
    O.Success = false;
    O.Diagnostics = FE.getDiags().render();
    return O;
  }
  O.Success = true;
  O.IsDecl = true;
  O.DeclKind = firstWord(Input);
  O.DeclName = declaredName(Input, O.DeclKind);
  Decls += Input + " in\n";
  // For a value binding, report the bound name's type.
  if (O.DeclKind == "let" && !O.DeclName.empty()) {
    Frontend FE2;
    CompileOutput Typed = FE2.compile("<repl>", Decls + O.DeclName);
    if (Typed.Success)
      O.Type = typeToString(Typed.FgType);
  }
  return O;
}

Outcome Session::load(const std::string &Path) {
  stats::ScopedTimer Timer("server.load");
  Outcome O;
  modules::ModuleLoader::Options LO;
  LO.SearchPaths = Opts.SearchPaths;
  modules::ModuleLoader Loader(LO);
  std::string Root;
  if (!Loader.loadFile(Path, Root, O.Error))
    return O;

  // Evaluate the file itself (its imports resolved) ...
  Frontend FE;
  std::string Error;
  const Term *Program = Loader.link(FE, Root, Error);
  if (!Program) {
    O.Success = false;
    O.Diagnostics = Error + "\n" + FE.getDiags().render();
    return O;
  }
  CompileOutput Out = FE.compileTerm(Program);
  if (!Out.Success) {
    O.Success = false;
    O.Diagnostics = FE.getDiags().render();
    return O;
  }
  O.Success = true;
  O.Type = typeToString(Out.FgType);
  sf::EvalResult R = FE.run(Out);
  if (!R.ok())
    O.Error = R.Error;
  else
    O.Value = sf::valueToString(R.Val);

  // ... then splice the whole closure's declaration spines into the
  // session scope, deps outermost — textual linking.
  Frontend SpineFE;
  std::string Spine;
  if (!Loader.spineText(SpineFE, Root, Spine, Error)) {
    // The file ran but its declarations could not be spliced into the
    // session scope — report failure, not a half-loaded success.
    O.Success = false;
    O.Error = "declarations not loaded: " + Error;
    return O;
  }
  Decls += Spine;
  stats::Statistics::global().add("server.loads");
  return O;
}
