//===- server/ArtifactCache.h - Shared content-hash artifact cache -*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon-wide artifact cache: immutable compilation artifacts
/// keyed by a content hash, shared by every concurrent session.
///
/// Keys use the same FNV-1a 64 content-hash discipline the module
/// system introduced for `.fgi` interfaces (modules/Interface.h): the
/// hash covers a kind tag (so `check` and `dump-bytecode` artifacts of
/// the same source never collide), the full source text, and — for
/// multi-file inputs — the whole import cone via
/// ModuleLoader::contentHash.  Two sessions submitting byte-identical
/// programs therefore share one artifact; any edit anywhere in the
/// dependency cone changes the key and misses.  Because FNV-1a is not
/// collision-resistant, each entry also stores the kind/payload/salt
/// it was keyed from and get() verifies them on a hash hit, so a
/// collision is a miss rather than a wrong answer.
///
/// Values are shared_ptr<const Artifact>: plain strings, immutable
/// after insertion, so a hit is a mutex-protected map lookup plus a
/// refcount bump — no compilation state (Frontend arenas, interned
/// types) ever crosses a session boundary.  That is what keeps
/// per-session isolation trivial: sessions share *results*, never
/// compiler internals.
///
/// The cache is bounded (default 4096 artifacts) with FIFO eviction —
/// a long-lived daemon must not grow without bound; FIFO is enough
/// because artifacts are cheap to rebuild and the working set of a
/// check-heavy client (editor, CI) is recent by construction.
///
/// Observability: `server.artifact_cache.hits` / `.misses` (hit_rate
/// derived at emission), `server.artifact_cache.evictions`.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SERVER_ARTIFACTCACHE_H
#define FG_SERVER_ARTIFACTCACHE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fg {
namespace server {

/// One immutable compilation artifact.  Which fields are populated
/// depends on the request kind that produced it (Kind tag in the key).
struct Artifact {
  bool Success = false;
  std::string Type;        ///< Rendered F_G type (check/run/type).
  std::string Diagnostics; ///< Rendered diagnostics when !Success.
  std::string Value;       ///< Rendered result value (run).
  std::string Bytecode;    ///< Disassembly (dump-bytecode).
  std::string Error;       ///< Runtime error (run; deterministic too).
};

using ArtifactPtr = std::shared_ptr<const Artifact>;

/// A cache key: the FNV-1a 64 hash used for the map lookup plus the
/// exact inputs it was derived from.  FNV-1a is fast but not
/// collision-resistant, so a hit is only trusted after get() compares
/// Kind/Payload/Salt byte-for-byte — a hash collision degrades to a
/// miss instead of silently serving another program's artifact.
struct CacheKey {
  std::string Kind;
  std::string Payload;
  uint64_t Salt = 0;
  uint64_t Hash = 0;
};

/// Thread-safe bounded map from content hash to artifact.
class ArtifactCache {
public:
  explicit ArtifactCache(size_t MaxEntries = 4096)
      : MaxEntries(MaxEntries ? MaxEntries : 1) {}

  /// The artifact for \p Key, or null on a miss.  An entry whose hash
  /// matches but whose kind/payload/salt differ (FNV collision) counts
  /// as a miss.  Counts server.artifact_cache.{hits,misses}.
  ArtifactPtr get(const CacheKey &Key) const;

  /// Inserts \p A under \p Key (first writer wins on a race; the
  /// artifacts are byte-identical by construction since the key covers
  /// all inputs).  Evicts FIFO past the capacity bound.
  void put(const CacheKey &Key, ArtifactPtr A);

  /// Drops every entry (bench cold-cache runs and tests).
  void clear();

  size_t size() const;

  /// Content-hash helper: FNV-1a 64 over a kind tag plus the payload,
  /// matching the `.fgi` hash discipline.  \p Salt folds in anything
  /// else that affects the artifact (option bits, import-cone hash).
  /// The returned key keeps the inputs for get()'s collision check.
  static CacheKey key(std::string_view Kind, std::string_view Payload,
                      uint64_t Salt = 0);

private:
  struct Entry {
    CacheKey Key;
    ArtifactPtr A;
  };

  mutable std::mutex Mu;
  size_t MaxEntries;
  std::unordered_map<uint64_t, Entry> Map;
  std::deque<uint64_t> InsertionOrder;
};

} // namespace server
} // namespace fg

#endif // FG_SERVER_ARTIFACTCACHE_H
