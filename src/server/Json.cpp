//===- server/Json.cpp - Minimal JSON values for the wire protocol --------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace fg;
using namespace fg::server;

const Json *Json::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::string Json::stringOr(const std::string &Key,
                           const std::string &Default) const {
  const Json *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

int64_t Json::intOr(const std::string &Key, int64_t Default) const {
  const Json *V = find(Key);
  return V && V->isNumber() ? V->asInt() : Default;
}

bool Json::boolOr(const std::string &Key, bool Default) const {
  const Json *V = find(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

std::string fg::server::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string Json::write() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Int:
    return std::to_string(I);
  case Kind::Double: {
    if (std::isnan(D) || std::isinf(D))
      return "null"; // JSON has no NaN/Inf; protocol values are finite.
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    return Buf;
  }
  case Kind::String:
    return "\"" + jsonEscape(S) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t N = 0; N < Elems.size(); ++N)
      Out += (N ? "," : "") + Elems[N].write();
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    for (size_t N = 0; N < Members.size(); ++N) {
      Out += (N ? ",\"" : "\"") + jsonEscape(Members[N].first) + "\":";
      Out += Members[N].second.write();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a raw character range.
struct JsonParser {
  const char *Pos;
  const char *End;
  std::string Error;
  int Depth = 0;

  /// parseValue recurses once per container nesting level, and request
  /// lines come from untrusted clients: without a bound, a line of a
  /// few thousand `[`s overflows the stack and kills the daemon.  The
  /// protocol nests a handful of levels deep; 128 is generous.
  static constexpr int MaxDepth = 128;

  void skipWs() {
    while (Pos != End && (*Pos == ' ' || *Pos == '\t' || *Pos == '\n' ||
                          *Pos == '\r'))
      ++Pos;
  }

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return false;
  }

  bool literal(const char *Word) {
    for (const char *W = Word; *W; ++W, ++Pos)
      if (Pos == End || *Pos != *W)
        return fail(std::string("expected `") + Word + "`");
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos == End || *Pos != '"')
      return fail("expected string");
    ++Pos;
    while (Pos != End && *Pos != '"') {
      char C = *Pos++;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos == End)
        return fail("unterminated escape");
      char E = *Pos++;
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (End - Pos < 4)
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int K = 0; K < 4; ++K) {
          char H = *Pos++;
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // Encode the code point as UTF-8.  Surrogate pairs are not
        // recombined (the protocol never emits them); each half encodes
        // independently, which round-trips through write() unchanged.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos == End)
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseValue(Json &Out) {
    skipWs();
    if (Pos == End)
      return fail("unexpected end of input");
    switch (*Pos) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = Json::null();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Json::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::string(std::move(S));
      return true;
    }
    case '[': {
      if (Depth >= MaxDepth)
        return fail("nesting too deep");
      ++Depth;
      ++Pos;
      Out = Json::array();
      skipWs();
      if (Pos != End && *Pos == ']') {
        ++Pos;
        --Depth;
        return true;
      }
      while (true) {
        Json Elem;
        if (!parseValue(Elem))
          return false;
        Out.push(std::move(Elem));
        skipWs();
        if (Pos == End)
          return fail("unterminated array");
        if (*Pos == ',') {
          ++Pos;
          continue;
        }
        if (*Pos == ']') {
          ++Pos;
          --Depth;
          return true;
        }
        return fail("expected `,` or `]`");
      }
    }
    case '{': {
      if (Depth >= MaxDepth)
        return fail("nesting too deep");
      ++Depth;
      ++Pos;
      Out = Json::object();
      skipWs();
      if (Pos != End && *Pos == '}') {
        ++Pos;
        --Depth;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos == End || *Pos != ':')
          return fail("expected `:`");
        ++Pos;
        Json Value;
        if (!parseValue(Value))
          return false;
        Out.set(std::move(Key), std::move(Value));
        skipWs();
        if (Pos == End)
          return fail("unterminated object");
        if (*Pos == ',') {
          ++Pos;
          continue;
        }
        if (*Pos == '}') {
          ++Pos;
          --Depth;
          return true;
        }
        return fail("expected `,` or `}`");
      }
    }
    default: {
      // Number: optional minus, digits, optional fraction/exponent.
      const char *Start = Pos;
      if (*Pos == '-')
        ++Pos;
      bool Digits = false;
      while (Pos != End && std::isdigit(static_cast<unsigned char>(*Pos))) {
        ++Pos;
        Digits = true;
      }
      if (!Digits)
        return fail("unexpected character");
      bool Integral = true;
      if (Pos != End && *Pos == '.') {
        Integral = false;
        ++Pos;
        while (Pos != End && std::isdigit(static_cast<unsigned char>(*Pos)))
          ++Pos;
      }
      if (Pos != End && (*Pos == 'e' || *Pos == 'E')) {
        Integral = false;
        ++Pos;
        if (Pos != End && (*Pos == '+' || *Pos == '-'))
          ++Pos;
        while (Pos != End && std::isdigit(static_cast<unsigned char>(*Pos)))
          ++Pos;
      }
      std::string Lit(Start, Pos);
      if (Integral)
        Out = Json::number(
            static_cast<int64_t>(std::strtoll(Lit.c_str(), nullptr, 10)));
      else
        Out = Json::number(std::strtod(Lit.c_str(), nullptr));
      return true;
    }
    }
  }
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string &Error) {
  JsonParser P{Text.data(), Text.data() + Text.size(), {}};
  if (!P.parseValue(Out)) {
    Error = P.Error;
    return false;
  }
  P.skipWs();
  if (P.Pos != P.End) {
    Error = "trailing characters after JSON value";
    return false;
  }
  return true;
}
