//===- server/Json.h - Minimal JSON values for the wire protocol -*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value type, parser, and writer — just
/// enough for the line-delimited `fgcd` wire protocol
/// (docs/PROTOCOL.md).  No external dependency: the container image is
/// fixed, so the server carries its own (strict, UTF-8-pass-through)
/// implementation.
///
/// Deliberate simplifications, all fine for the protocol:
///
///  * numbers are stored as int64 when the literal is integral and as
///    double otherwise (the protocol only uses integral ids/counters);
///  * object member order is preserved (vector of pairs), so responses
///    serialize deterministically and golden tests diff cleanly;
///  * the parser rejects trailing garbage — exactly one value per
///    protocol line.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SERVER_JSON_H
#define FG_SERVER_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fg {
namespace server {

/// One JSON value.  Copyable; object/array payloads are by-value.
class Json {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  static Json null() { return Json(); }
  static Json boolean(bool B) {
    Json J;
    J.K = Kind::Bool;
    J.B = B;
    return J;
  }
  static Json number(int64_t N) {
    Json J;
    J.K = Kind::Int;
    J.I = N;
    return J;
  }
  static Json number(double D) {
    Json J;
    J.K = Kind::Double;
    J.D = D;
    return J;
  }
  static Json string(std::string S) {
    Json J;
    J.K = Kind::String;
    J.S = std::move(S);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Double ? (int64_t)D : I; }
  double asDouble() const { return K == Kind::Double ? D : (double)I; }
  const std::string &asString() const { return S; }
  const std::vector<Json> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

  /// Object field lookup; null when absent (or not an object).
  const Json *find(const std::string &Key) const;
  /// Convenience accessors with defaults for optional request params.
  std::string stringOr(const std::string &Key,
                       const std::string &Default) const;
  int64_t intOr(const std::string &Key, int64_t Default) const;
  bool boolOr(const std::string &Key, bool Default) const;

  /// Appends to an array / sets an object member (last set wins on
  /// serialization; callers never set a key twice).
  void push(Json V) { Elems.push_back(std::move(V)); }
  void set(std::string Key, Json V) {
    Members.emplace_back(std::move(Key), std::move(V));
  }

  /// Serializes on one line (no newlines — protocol framing relies on
  /// it; string escapes cover \n, \t, quotes, backslash, control
  /// chars).
  std::string write() const;

  /// Parses exactly one JSON value from \p Text (surrounding
  /// whitespace allowed, trailing garbage rejected).  Returns false
  /// with \p Error set on malformed input.
  static bool parse(const std::string &Text, Json &Out, std::string &Error);

private:
  Kind K;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Elems;
  std::vector<std::pair<std::string, Json>> Members;
};

/// Escapes \p S as a JSON string literal body (no surrounding quotes).
std::string jsonEscape(const std::string &S);

} // namespace server
} // namespace fg

#endif // FG_SERVER_JSON_H
