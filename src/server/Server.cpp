//===- server/Server.cpp - The persistent fgcd daemon ---------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "server/Protocol.h"
#include "support/Stats.h"
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace fg;
using namespace fg::server;

bool fg::server::serveStream(Session &S, std::istream &In,
                             std::ostream &Out) {
  Protocol P(S);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Protocol::Reply R = P.handleLine(Line);
    Out << R.Line << "\n" << std::flush;
    if (R.Shutdown)
      return true;
  }
  return false;
}

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)),
      Cache(std::make_shared<ArtifactCache>(this->Opts.CacheEntries)) {
  if (this->Opts.Threads == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    this->Opts.Threads = HW ? HW : 1;
  }
}

Server::~Server() { stop(); }

bool Server::start(std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Opts.SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Opts.SocketPath.c_str()); // Stale socket from a dead daemon.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = "bind " + Opts.SocketPath + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  Started = true;
  Stopping = false;
  for (unsigned I = 0; I < Opts.Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  // Snapshot the fd: start() wrote it before spawning this thread, and
  // requestStop() only shutdown()s it — stop() close()s it after this
  // thread has been joined, so the descriptor number cannot be recycled
  // for an unrelated file while accept() still references it.
  const int AcceptFd = ListenFd;
  while (true) {
    int Fd = ::accept(AcceptFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listener closed: shutting down.
    }
    stats::Statistics::global().add("server.connections");
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Stopping) {
        ::close(Fd);
        return;
      }
      Pending.push_back(Fd);
    }
    QueueCv.notify_one();
  }
}

void Server::workerLoop() {
  while (true) {
    int Fd;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      QueueCv.wait(Lock, [this] { return Stopping || !Pending.empty(); });
      if (Pending.empty())
        return; // Stopping with nothing queued.
      Fd = Pending.front();
      Pending.pop_front();
    }
    serveConnection(Fd);
  }
}

void Server::serveConnection(int Fd) {
  Session S(Cache, Opts.SessionOpts);
  Protocol P(S);
  std::string Buffer;
  char Chunk[4096];
  bool Shutdown = false;
  while (!Shutdown) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break; // EOF or error: the session is over either way.
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t NL;
    while (!Shutdown && (NL = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, NL);
      Buffer.erase(0, NL + 1);
      if (Line.empty())
        continue;
      Protocol::Reply R = P.handleLine(Line);
      R.Line += "\n";
      size_t Sent = 0;
      while (Sent < R.Line.size()) {
        ssize_t W = ::send(Fd, R.Line.data() + Sent, R.Line.size() - Sent,
                           MSG_NOSIGNAL);
        if (W <= 0) {
          Shutdown = R.Shutdown;
          goto done; // Client went away mid-response.
        }
        Sent += static_cast<size_t>(W);
      }
      Shutdown = R.Shutdown;
    }
  }
done:
  ::close(Fd);
  stats::Statistics::global().add("server.sessions.closed");
  if (Shutdown)
    requestStop(); // Flag only: joining happens on the owner thread.
}

void Server::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  StopCv.wait(Lock, [this] { return Stopping || !Started; });
}

void Server::requestStop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Started || Stopping)
      return;
    Stopping = true;
    for (int Fd : Pending)
      ::close(Fd);
    Pending.clear();
    if (ListenFd >= 0) {
      // shutdown() unblocks the acceptor's accept() without releasing
      // the descriptor number; stop() close()s it only after joining
      // the acceptor, so accept() can never race a recycled fd.
      ::shutdown(ListenFd, SHUT_RDWR);
    }
  }
  StopCv.notify_all();
  QueueCv.notify_all();
}

void Server::stop() {
  // Only ever called on the thread that owns the Server (main loop,
  // tests, destructor) — workers signal via requestStop() and exit on
  // their own, so joining here cannot deadlock or self-join.
  requestStop();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  Workers.clear();
  if (Acceptor.joinable())
    Acceptor.join();
  std::lock_guard<std::mutex> Lock(Mu);
  if (ListenFd >= 0) {
    ::close(ListenFd); // Safe now: the acceptor has been joined.
    ListenFd = -1;
  }
  if (Started)
    ::unlink(Opts.SocketPath.c_str());
  Started = false;
}
