//===- server/Protocol.h - The fgcd wire protocol ---------------*- C++ -*-===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-delimited JSON request/response protocol spoken by `fgcd`
/// over Unix sockets and stdio.  **docs/PROTOCOL.md is the normative
/// spec** — every method, field, and error code implemented here is
/// documented there, and the doc-lint CI step keeps the examples
/// honest.  One request object per line in, one response object per
/// line out, in order:
///
///   {"id":1,"method":"check","params":{"source":"iadd(1,2)"}}
///   {"id":1,"ok":true,"result":{"success":true,"type":"int","cached":false}}
///
/// Malformed lines and unknown methods are *protocol errors*
/// (`ok:false` with a code); programs that fail to typecheck are
/// *results* (`ok:true`, `result.success:false` with diagnostics) —
/// a compiler service reporting a type error is doing its job.
///
//===----------------------------------------------------------------------===//

#ifndef FG_SERVER_PROTOCOL_H
#define FG_SERVER_PROTOCOL_H

#include "server/Session.h"
#include <string>

namespace fg {
namespace server {

/// Protocol revision; bumped only on incompatible changes (see the
/// compatibility policy in docs/PROTOCOL.md).
inline constexpr int ProtocolVersion = 1;

/// Stateless translator between protocol lines and one Session.
class Protocol {
public:
  explicit Protocol(Session &S) : S(S) {}

  struct Reply {
    std::string Line;      ///< One serialized response object.
    bool Shutdown = false; ///< The request asked the server to stop.
  };

  /// Handles one request line (without its trailing newline).
  Reply handleLine(const std::string &Line);

private:
  Session &S;
};

} // namespace server
} // namespace fg

#endif // FG_SERVER_PROTOCOL_H
