//===- server/Protocol.cpp - The fgcd wire protocol -----------------------===//
//
// Part of the fgc project: a reproduction of "Essential Language Support
// for Generic Programming" (Siek & Lumsdaine, PLDI 2005).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "server/Json.h"
#include "support/Backends.h"
#include "support/Stats.h"
#include "systemf/Value.h"

using namespace fg;
using namespace fg::server;

namespace {

Json errorReply(const Json &Id, const std::string &Code,
                const std::string &Message) {
  stats::Statistics::global().add("server.errors." + Code);
  Json Error = Json::object();
  Error.set("code", Json::string(Code));
  Error.set("message", Json::string(Message));
  Json Reply = Json::object();
  Reply.set("id", Id);
  Reply.set("ok", Json::boolean(false));
  Reply.set("error", std::move(Error));
  return Reply;
}

Json okReply(const Json &Id, Json Result) {
  Json Reply = Json::object();
  Reply.set("id", Id);
  Reply.set("ok", Json::boolean(true));
  Reply.set("result", std::move(Result));
  return Reply;
}

/// The requested backend exists but cannot run here (AOT without a
/// host compiler): a structured error, distinct from `invalid_params`
/// (an unknown backend name), so clients can tell "fix your request"
/// from "fix your environment".  See docs/PROTOCOL.md.
Json backendUnavailableReply(const Json &Id, const std::string &Backend,
                             const Outcome &O) {
  return errorReply(Id, "backend_unavailable",
                    "backend `" + Backend + "` is unavailable: " + O.Error);
}

/// Renders a session Outcome as a result object.  Fields are omitted
/// when empty; `success`/`cached` are always present.
Json resultOf(const Outcome &O) {
  Json R = Json::object();
  R.set("success", Json::boolean(O.Success));
  R.set("cached", Json::boolean(O.Cached));
  if (!O.Type.empty())
    R.set("type", Json::string(O.Type));
  if (!O.Value.empty())
    R.set("value", Json::string(O.Value));
  if (!O.Bytecode.empty())
    R.set("bytecode", Json::string(O.Bytecode));
  if (!O.Diagnostics.empty())
    R.set("diagnostics", Json::string(O.Diagnostics));
  if (!O.Error.empty())
    R.set("error", Json::string(O.Error));
  if (O.IsDecl) {
    R.set("decl", Json::boolean(true));
    R.set("kind", Json::string(O.DeclKind));
    if (!O.DeclName.empty())
      R.set("name", Json::string(O.DeclName));
  }
  return R;
}

} // namespace

Protocol::Reply Protocol::handleLine(const std::string &Line) {
  static std::atomic<uint64_t> &Requests =
      stats::Statistics::global().counter("server.requests");
  ++Requests;
  stats::ScopedTimer Timer("server.request");

  Reply Out;
  Json Request;
  std::string ParseError;
  if (!Json::parse(Line, Request, ParseError)) {
    Out.Line = errorReply(Json::null(), "parse_error",
                          "request is not valid JSON: " + ParseError)
                   .write();
    return Out;
  }
  if (!Request.isObject()) {
    Out.Line =
        errorReply(Json::null(), "invalid_request", "request must be a "
                                                    "JSON object")
            .write();
    return Out;
  }
  Json Id = Request.find("id") ? *Request.find("id") : Json::null();
  const Json *Method = Request.find("method");
  if (!Method || !Method->isString()) {
    Out.Line = errorReply(Id, "invalid_request",
                          "request needs a string `method` member")
                   .write();
    return Out;
  }
  const std::string &M = Method->asString();
  stats::Statistics::global().add("server.requests." + M);
  Json Empty = Json::object();
  const Json *ParamsPtr = Request.find("params");
  if (ParamsPtr && !ParamsPtr->isObject()) {
    Out.Line =
        errorReply(Id, "invalid_request", "`params` must be an object")
            .write();
    return Out;
  }
  const Json &Params = ParamsPtr ? *ParamsPtr : Empty;

  auto requireString = [&](const char *Key, std::string &Value) {
    const Json *V = Params.find(Key);
    if (!V || !V->isString())
      return false;
    Value = V->asString();
    return true;
  };

  if (M == "version") {
    Json R = Json::object();
    R.set("protocol", Json::number(static_cast<int64_t>(ProtocolVersion)));
    R.set("server", Json::string("fgcd"));
    Out.Line = okReply(Id, std::move(R)).write();
    return Out;
  }

  if (M == "check" || M == "run" || M == "dump-bytecode") {
    std::string Source, Path;
    bool HasSource = requireString("source", Source);
    bool HasPath = requireString("path", Path);
    if (HasSource == HasPath) { // Neither or both.
      Out.Line = errorReply(Id, "invalid_params",
                            "`" + M + "` needs exactly one of `source` or "
                                      "`path`")
                     .write();
      return Out;
    }
    std::string Name = Params.stringOr("name", HasPath ? Path : "<" + M + ">");
    if (M == "check") {
      Outcome O = HasPath ? S.checkPath(Path) : S.check(Source, Name);
      Out.Line = okReply(Id, resultOf(O)).write();
      return Out;
    }
    if (M == "dump-bytecode") {
      if (HasPath) {
        Out.Line = errorReply(Id, "invalid_params",
                              "`dump-bytecode` takes `source` only")
                       .write();
        return Out;
      }
      Out.Line = okReply(Id, resultOf(S.dumpBytecode(Source, Name))).write();
      return Out;
    }
    // run
    std::string Backend = Params.stringOr("backend", "tree");
    if (!isBackendName(Backend)) {
      Out.Line = errorReply(Id, "invalid_params",
                            "`backend` must be one of: " + backendNameList())
                     .write();
      return Out;
    }
    int64_t OptLevel = Params.intOr("optimize", 0);
    if (OptLevel < 0 || OptLevel > 2) {
      Out.Line = errorReply(Id, "invalid_params",
                            "`optimize` must be 0, 1, or 2")
                     .write();
      return Out;
    }
    Outcome O = S.run(Source, Name, Backend, static_cast<int>(OptLevel),
                      HasPath ? Path : "");
    Out.Line = O.BackendUnavailable
                   ? backendUnavailableReply(Id, Backend, O).write()
                   : okReply(Id, resultOf(O)).write();
    return Out;
  }

  if (M == "type") {
    std::string Expr;
    if (!requireString("expr", Expr)) {
      Out.Line = errorReply(Id, "invalid_params",
                            "`type` needs a string `expr` parameter")
                     .write();
      return Out;
    }
    Out.Line = okReply(Id, resultOf(S.typeOf(Expr))).write();
    return Out;
  }

  if (M == "eval") {
    std::string Input;
    if (!requireString("input", Input)) {
      Out.Line = errorReply(Id, "invalid_params",
                            "`eval` needs a string `input` parameter")
                     .write();
      return Out;
    }
    std::string Backend = Params.stringOr("backend", "tree");
    if (!isBackendName(Backend)) {
      Out.Line = errorReply(Id, "invalid_params",
                            "`backend` must be one of: " + backendNameList())
                     .write();
      return Out;
    }
    Outcome O = S.eval(Input, Backend);
    Out.Line = O.BackendUnavailable
                   ? backendUnavailableReply(Id, Backend, O).write()
                   : okReply(Id, resultOf(O)).write();
    return Out;
  }

  if (M == "load") {
    std::string Path;
    if (!requireString("path", Path)) {
      Out.Line = errorReply(Id, "invalid_params",
                            "`load` needs a string `path` parameter")
                     .write();
      return Out;
    }
    Out.Line = okReply(Id, resultOf(S.load(Path))).write();
    return Out;
  }

  if (M == "reset") {
    S.reset();
    stats::Statistics::global().add("server.arena.resets");
    Json R = Json::object();
    R.set("success", Json::boolean(true));
    Out.Line = okReply(Id, std::move(R)).write();
    return Out;
  }

  if (M == "stats") {
    Json Counters = Json::object();
    for (const auto &[Name, Value] : stats::Statistics::global().counters())
      Counters.set(Name, Json::number(static_cast<int64_t>(Value)));
    // Live-heap gauges, not monotonic counters: the interpreter value and
    // environment-node populations right now.  A healthy daemon returns
    // to the same figures after every `reset` (the interned constant
    // pools are part of the baseline); ServerTest pins that invariant.
    Counters.set("server.arena.live_values",
                 Json::number(sf::liveValueGauge().load(
                     std::memory_order_relaxed)));
    Counters.set("server.arena.live_env_nodes",
                 Json::number(sf::liveEnvNodeGauge().load(
                     std::memory_order_relaxed)));
    Json R = Json::object();
    R.set("counters", std::move(Counters));
    R.set("cache_entries",
          Json::number(static_cast<int64_t>(S.cache().size())));
    Out.Line = okReply(Id, std::move(R)).write();
    return Out;
  }

  if (M == "shutdown") {
    Json R = Json::object();
    R.set("success", Json::boolean(true));
    Out.Line = okReply(Id, std::move(R)).write();
    Out.Shutdown = true;
    return Out;
  }

  Out.Line =
      errorReply(Id, "unknown_method", "unknown method `" + M + "`").write();
  return Out;
}
