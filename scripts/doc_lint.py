#!/usr/bin/env python3
"""Doc lint: every ```fg fence in the docs must typecheck.

Convention (docs/LANGUAGE.md top note): fenced blocks tagged `fg` are
complete, checkable F_G programs; untagged fences are grammar sketches
or fragments and are skipped.  This script extracts each tagged block
and runs `fgc --check` on it, so documentation examples cannot rot.

Usage: doc_lint.py <path-to-fgc> <doc.md> [<doc.md> ...]
Exit 0 when every snippet typechecks; 1 otherwise, naming each failing
doc/line with the compiler's diagnostics.
"""

import subprocess
import sys


def extract_fg_blocks(path):
    """Yields (start_line, snippet) for every ```fg fence in *path*."""
    blocks = []
    lines = open(path, encoding="utf-8").read().splitlines()
    in_block = False
    start = 0
    body = []
    for i, line in enumerate(lines, 1):
        stripped = line.strip()
        if not in_block and stripped == "```fg":
            in_block, start, body = True, i, []
        elif in_block and stripped == "```":
            in_block = False
            blocks.append((start, "\n".join(body) + "\n"))
        elif in_block:
            body.append(line)
    if in_block:
        raise SystemExit(f"{path}:{start}: unterminated ```fg fence")
    return blocks


def main():
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    fgc, docs = sys.argv[1], sys.argv[2:]
    checked = failures = 0
    for doc in docs:
        for line, snippet in extract_fg_blocks(doc):
            checked += 1
            proc = subprocess.run(
                [fgc, "--check", "-"],
                input=snippet,
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                failures += 1
                print(f"{doc}:{line}: snippet fails `fgc --check`:",
                      file=sys.stderr)
                for out in (proc.stdout, proc.stderr):
                    if out.strip():
                        print("  " + out.strip().replace("\n", "\n  "),
                              file=sys.stderr)
    print(f"doc-lint: {checked} fg snippet(s) checked, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
