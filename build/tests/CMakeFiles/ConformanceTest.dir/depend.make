# Empty dependencies file for ConformanceTest.
# This may be replaced when dependencies are built.
