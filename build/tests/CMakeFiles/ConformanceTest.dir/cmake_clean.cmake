file(REMOVE_RECURSE
  "CMakeFiles/ConformanceTest.dir/ConformanceTest.cpp.o"
  "CMakeFiles/ConformanceTest.dir/ConformanceTest.cpp.o.d"
  "ConformanceTest"
  "ConformanceTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ConformanceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
