file(REMOVE_RECURSE
  "CMakeFiles/LexerTest.dir/LexerTest.cpp.o"
  "CMakeFiles/LexerTest.dir/LexerTest.cpp.o.d"
  "LexerTest"
  "LexerTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LexerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
