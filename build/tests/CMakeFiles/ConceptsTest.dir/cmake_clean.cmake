file(REMOVE_RECURSE
  "CMakeFiles/ConceptsTest.dir/ConceptsTest.cpp.o"
  "CMakeFiles/ConceptsTest.dir/ConceptsTest.cpp.o.d"
  "ConceptsTest"
  "ConceptsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ConceptsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
