# Empty compiler generated dependencies file for ConceptsTest.
# This may be replaced when dependencies are built.
