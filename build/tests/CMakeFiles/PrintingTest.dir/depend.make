# Empty dependencies file for PrintingTest.
# This may be replaced when dependencies are built.
