file(REMOVE_RECURSE
  "CMakeFiles/PrintingTest.dir/PrintingTest.cpp.o"
  "CMakeFiles/PrintingTest.dir/PrintingTest.cpp.o.d"
  "PrintingTest"
  "PrintingTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PrintingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
