# Empty compiler generated dependencies file for CongruenceTest.
# This may be replaced when dependencies are built.
