file(REMOVE_RECURSE
  "CMakeFiles/CongruenceTest.dir/CongruenceTest.cpp.o"
  "CMakeFiles/CongruenceTest.dir/CongruenceTest.cpp.o.d"
  "CongruenceTest"
  "CongruenceTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CongruenceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
