file(REMOVE_RECURSE
  "CMakeFiles/TypeCheckTest.dir/TypeCheckTest.cpp.o"
  "CMakeFiles/TypeCheckTest.dir/TypeCheckTest.cpp.o.d"
  "TypeCheckTest"
  "TypeCheckTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TypeCheckTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
