# Empty dependencies file for TypeCheckTest.
# This may be replaced when dependencies are built.
