file(REMOVE_RECURSE
  "CMakeFiles/ParserTest.dir/ParserTest.cpp.o"
  "CMakeFiles/ParserTest.dir/ParserTest.cpp.o.d"
  "ParserTest"
  "ParserTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ParserTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
