# Empty dependencies file for DiagnosticsQualityTest.
# This may be replaced when dependencies are built.
