file(REMOVE_RECURSE
  "CMakeFiles/DiagnosticsQualityTest.dir/DiagnosticsQualityTest.cpp.o"
  "CMakeFiles/DiagnosticsQualityTest.dir/DiagnosticsQualityTest.cpp.o.d"
  "DiagnosticsQualityTest"
  "DiagnosticsQualityTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DiagnosticsQualityTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
