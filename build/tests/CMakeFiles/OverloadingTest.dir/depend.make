# Empty dependencies file for OverloadingTest.
# This may be replaced when dependencies are built.
