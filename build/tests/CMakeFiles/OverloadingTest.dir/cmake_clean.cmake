file(REMOVE_RECURSE
  "CMakeFiles/OverloadingTest.dir/OverloadingTest.cpp.o"
  "CMakeFiles/OverloadingTest.dir/OverloadingTest.cpp.o.d"
  "OverloadingTest"
  "OverloadingTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OverloadingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
