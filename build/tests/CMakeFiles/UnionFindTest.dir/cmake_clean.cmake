file(REMOVE_RECURSE
  "CMakeFiles/UnionFindTest.dir/UnionFindTest.cpp.o"
  "CMakeFiles/UnionFindTest.dir/UnionFindTest.cpp.o.d"
  "UnionFindTest"
  "UnionFindTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/UnionFindTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
