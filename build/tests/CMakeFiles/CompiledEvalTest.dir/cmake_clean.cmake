file(REMOVE_RECURSE
  "CMakeFiles/CompiledEvalTest.dir/CompiledEvalTest.cpp.o"
  "CMakeFiles/CompiledEvalTest.dir/CompiledEvalTest.cpp.o.d"
  "CompiledEvalTest"
  "CompiledEvalTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CompiledEvalTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
