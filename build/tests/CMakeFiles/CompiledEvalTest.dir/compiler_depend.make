# Empty compiler generated dependencies file for CompiledEvalTest.
# This may be replaced when dependencies are built.
