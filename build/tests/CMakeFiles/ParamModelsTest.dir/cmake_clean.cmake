file(REMOVE_RECURSE
  "CMakeFiles/ParamModelsTest.dir/ParamModelsTest.cpp.o"
  "CMakeFiles/ParamModelsTest.dir/ParamModelsTest.cpp.o.d"
  "ParamModelsTest"
  "ParamModelsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ParamModelsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
