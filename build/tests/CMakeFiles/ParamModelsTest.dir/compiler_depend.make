# Empty compiler generated dependencies file for ParamModelsTest.
# This may be replaced when dependencies are built.
