file(REMOVE_RECURSE
  "AssocTypesTest"
  "AssocTypesTest.pdb"
  "CMakeFiles/AssocTypesTest.dir/AssocTypesTest.cpp.o"
  "CMakeFiles/AssocTypesTest.dir/AssocTypesTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AssocTypesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
