# Empty dependencies file for AssocTypesTest.
# This may be replaced when dependencies are built.
