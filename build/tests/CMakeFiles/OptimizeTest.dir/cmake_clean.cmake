file(REMOVE_RECURSE
  "CMakeFiles/OptimizeTest.dir/OptimizeTest.cpp.o"
  "CMakeFiles/OptimizeTest.dir/OptimizeTest.cpp.o.d"
  "OptimizeTest"
  "OptimizeTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OptimizeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
