# Empty compiler generated dependencies file for OptimizeTest.
# This may be replaced when dependencies are built.
