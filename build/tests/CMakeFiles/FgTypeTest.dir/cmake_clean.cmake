file(REMOVE_RECURSE
  "CMakeFiles/FgTypeTest.dir/FgTypeTest.cpp.o"
  "CMakeFiles/FgTypeTest.dir/FgTypeTest.cpp.o.d"
  "FgTypeTest"
  "FgTypeTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FgTypeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
