# Empty compiler generated dependencies file for FgTypeTest.
# This may be replaced when dependencies are built.
