file(REMOVE_RECURSE
  "CMakeFiles/SfTypeCheckTest.dir/SfTypeCheckTest.cpp.o"
  "CMakeFiles/SfTypeCheckTest.dir/SfTypeCheckTest.cpp.o.d"
  "SfTypeCheckTest"
  "SfTypeCheckTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SfTypeCheckTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
