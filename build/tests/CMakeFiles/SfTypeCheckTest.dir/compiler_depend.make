# Empty compiler generated dependencies file for SfTypeCheckTest.
# This may be replaced when dependencies are built.
