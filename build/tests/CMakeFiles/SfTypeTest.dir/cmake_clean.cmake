file(REMOVE_RECURSE
  "CMakeFiles/SfTypeTest.dir/SfTypeTest.cpp.o"
  "CMakeFiles/SfTypeTest.dir/SfTypeTest.cpp.o.d"
  "SfTypeTest"
  "SfTypeTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SfTypeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
