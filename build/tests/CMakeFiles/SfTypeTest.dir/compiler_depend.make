# Empty compiler generated dependencies file for SfTypeTest.
# This may be replaced when dependencies are built.
