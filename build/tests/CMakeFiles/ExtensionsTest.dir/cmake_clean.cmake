file(REMOVE_RECURSE
  "CMakeFiles/ExtensionsTest.dir/ExtensionsTest.cpp.o"
  "CMakeFiles/ExtensionsTest.dir/ExtensionsTest.cpp.o.d"
  "ExtensionsTest"
  "ExtensionsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExtensionsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
