file(REMOVE_RECURSE
  "CMakeFiles/SfEvalTest.dir/SfEvalTest.cpp.o"
  "CMakeFiles/SfEvalTest.dir/SfEvalTest.cpp.o.d"
  "SfEvalTest"
  "SfEvalTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SfEvalTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
