# Empty dependencies file for SfEvalTest.
# This may be replaced when dependencies are built.
