file(REMOVE_RECURSE
  "CMakeFiles/ScopingTest.dir/ScopingTest.cpp.o"
  "CMakeFiles/ScopingTest.dir/ScopingTest.cpp.o.d"
  "ScopingTest"
  "ScopingTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ScopingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
