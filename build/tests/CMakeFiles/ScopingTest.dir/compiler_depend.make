# Empty compiler generated dependencies file for ScopingTest.
# This may be replaced when dependencies are built.
