file(REMOVE_RECURSE
  "CMakeFiles/TranslateTest.dir/TranslateTest.cpp.o"
  "CMakeFiles/TranslateTest.dir/TranslateTest.cpp.o.d"
  "TranslateTest"
  "TranslateTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TranslateTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
