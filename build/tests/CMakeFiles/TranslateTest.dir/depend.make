# Empty dependencies file for TranslateTest.
# This may be replaced when dependencies are built.
