# Empty compiler generated dependencies file for BenchPipeline.
# This may be replaced when dependencies are built.
