file(REMOVE_RECURSE
  "BenchPipeline"
  "BenchPipeline.pdb"
  "CMakeFiles/BenchPipeline.dir/BenchPipeline.cpp.o"
  "CMakeFiles/BenchPipeline.dir/BenchPipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchPipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
