# Empty compiler generated dependencies file for BenchFigures.
# This may be replaced when dependencies are built.
