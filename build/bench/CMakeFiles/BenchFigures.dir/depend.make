# Empty dependencies file for BenchFigures.
# This may be replaced when dependencies are built.
