file(REMOVE_RECURSE
  "BenchFigures"
  "BenchFigures.pdb"
  "CMakeFiles/BenchFigures.dir/BenchFigures.cpp.o"
  "CMakeFiles/BenchFigures.dir/BenchFigures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchFigures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
