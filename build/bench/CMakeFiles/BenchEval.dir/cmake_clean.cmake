file(REMOVE_RECURSE
  "BenchEval"
  "BenchEval.pdb"
  "CMakeFiles/BenchEval.dir/BenchEval.cpp.o"
  "CMakeFiles/BenchEval.dir/BenchEval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchEval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
