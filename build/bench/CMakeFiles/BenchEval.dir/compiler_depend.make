# Empty compiler generated dependencies file for BenchEval.
# This may be replaced when dependencies are built.
