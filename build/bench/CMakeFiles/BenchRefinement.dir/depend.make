# Empty dependencies file for BenchRefinement.
# This may be replaced when dependencies are built.
