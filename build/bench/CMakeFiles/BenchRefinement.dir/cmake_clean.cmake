file(REMOVE_RECURSE
  "BenchRefinement"
  "BenchRefinement.pdb"
  "CMakeFiles/BenchRefinement.dir/BenchRefinement.cpp.o"
  "CMakeFiles/BenchRefinement.dir/BenchRefinement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchRefinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
