file(REMOVE_RECURSE
  "BenchAssoc"
  "BenchAssoc.pdb"
  "CMakeFiles/BenchAssoc.dir/BenchAssoc.cpp.o"
  "CMakeFiles/BenchAssoc.dir/BenchAssoc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchAssoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
