# Empty compiler generated dependencies file for BenchAssoc.
# This may be replaced when dependencies are built.
