file(REMOVE_RECURSE
  "BenchModelLookup"
  "BenchModelLookup.pdb"
  "CMakeFiles/BenchModelLookup.dir/BenchModelLookup.cpp.o"
  "CMakeFiles/BenchModelLookup.dir/BenchModelLookup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchModelLookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
