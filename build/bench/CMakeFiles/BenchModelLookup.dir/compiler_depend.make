# Empty compiler generated dependencies file for BenchModelLookup.
# This may be replaced when dependencies are built.
