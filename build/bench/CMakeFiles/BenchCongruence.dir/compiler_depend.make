# Empty compiler generated dependencies file for BenchCongruence.
# This may be replaced when dependencies are built.
