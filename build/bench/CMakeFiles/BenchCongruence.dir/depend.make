# Empty dependencies file for BenchCongruence.
# This may be replaced when dependencies are built.
