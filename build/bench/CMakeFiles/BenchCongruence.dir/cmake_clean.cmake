file(REMOVE_RECURSE
  "BenchCongruence"
  "BenchCongruence.pdb"
  "CMakeFiles/BenchCongruence.dir/BenchCongruence.cpp.o"
  "CMakeFiles/BenchCongruence.dir/BenchCongruence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BenchCongruence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
