# Empty compiler generated dependencies file for generic_sort.
# This may be replaced when dependencies are built.
