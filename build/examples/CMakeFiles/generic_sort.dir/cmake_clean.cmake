file(REMOVE_RECURSE
  "CMakeFiles/generic_sort.dir/generic_sort.cpp.o"
  "CMakeFiles/generic_sort.dir/generic_sort.cpp.o.d"
  "generic_sort"
  "generic_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
