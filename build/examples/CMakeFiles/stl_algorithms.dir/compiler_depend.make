# Empty compiler generated dependencies file for stl_algorithms.
# This may be replaced when dependencies are built.
