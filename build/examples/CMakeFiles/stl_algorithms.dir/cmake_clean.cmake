file(REMOVE_RECURSE
  "CMakeFiles/stl_algorithms.dir/stl_algorithms.cpp.o"
  "CMakeFiles/stl_algorithms.dir/stl_algorithms.cpp.o.d"
  "stl_algorithms"
  "stl_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stl_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
