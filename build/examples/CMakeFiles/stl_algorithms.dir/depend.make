# Empty dependencies file for stl_algorithms.
# This may be replaced when dependencies are built.
