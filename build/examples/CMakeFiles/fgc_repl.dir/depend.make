# Empty dependencies file for fgc_repl.
# This may be replaced when dependencies are built.
