file(REMOVE_RECURSE
  "CMakeFiles/fgc_repl.dir/fgc_repl.cpp.o"
  "CMakeFiles/fgc_repl.dir/fgc_repl.cpp.o.d"
  "fgc_repl"
  "fgc_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgc_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
