file(REMOVE_RECURSE
  "CMakeFiles/monoid_library.dir/monoid_library.cpp.o"
  "CMakeFiles/monoid_library.dir/monoid_library.cpp.o.d"
  "monoid_library"
  "monoid_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monoid_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
