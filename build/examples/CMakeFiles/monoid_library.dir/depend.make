# Empty dependencies file for monoid_library.
# This may be replaced when dependencies are built.
