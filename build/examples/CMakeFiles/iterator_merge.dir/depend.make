# Empty dependencies file for iterator_merge.
# This may be replaced when dependencies are built.
