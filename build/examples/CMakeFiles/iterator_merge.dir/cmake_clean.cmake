file(REMOVE_RECURSE
  "CMakeFiles/iterator_merge.dir/iterator_merge.cpp.o"
  "CMakeFiles/iterator_merge.dir/iterator_merge.cpp.o.d"
  "iterator_merge"
  "iterator_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterator_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
