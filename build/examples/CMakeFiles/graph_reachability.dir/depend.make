# Empty dependencies file for graph_reachability.
# This may be replaced when dependencies are built.
