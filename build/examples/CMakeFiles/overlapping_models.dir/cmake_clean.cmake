file(REMOVE_RECURSE
  "CMakeFiles/overlapping_models.dir/overlapping_models.cpp.o"
  "CMakeFiles/overlapping_models.dir/overlapping_models.cpp.o.d"
  "overlapping_models"
  "overlapping_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlapping_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
