# Empty dependencies file for overlapping_models.
# This may be replaced when dependencies are built.
