# Empty compiler generated dependencies file for fgc.
# This may be replaced when dependencies are built.
