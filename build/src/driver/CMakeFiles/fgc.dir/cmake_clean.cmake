file(REMOVE_RECURSE
  "CMakeFiles/fgc.dir/Main.cpp.o"
  "CMakeFiles/fgc.dir/Main.cpp.o.d"
  "fgc"
  "fgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
