file(REMOVE_RECURSE
  "CMakeFiles/fg_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/fg_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/fg_support.dir/SourceManager.cpp.o"
  "CMakeFiles/fg_support.dir/SourceManager.cpp.o.d"
  "libfg_support.a"
  "libfg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
