file(REMOVE_RECURSE
  "CMakeFiles/fg_systemf.dir/Builtins.cpp.o"
  "CMakeFiles/fg_systemf.dir/Builtins.cpp.o.d"
  "CMakeFiles/fg_systemf.dir/Compile.cpp.o"
  "CMakeFiles/fg_systemf.dir/Compile.cpp.o.d"
  "CMakeFiles/fg_systemf.dir/Eval.cpp.o"
  "CMakeFiles/fg_systemf.dir/Eval.cpp.o.d"
  "CMakeFiles/fg_systemf.dir/Optimize.cpp.o"
  "CMakeFiles/fg_systemf.dir/Optimize.cpp.o.d"
  "CMakeFiles/fg_systemf.dir/Term.cpp.o"
  "CMakeFiles/fg_systemf.dir/Term.cpp.o.d"
  "CMakeFiles/fg_systemf.dir/Type.cpp.o"
  "CMakeFiles/fg_systemf.dir/Type.cpp.o.d"
  "CMakeFiles/fg_systemf.dir/TypeCheck.cpp.o"
  "CMakeFiles/fg_systemf.dir/TypeCheck.cpp.o.d"
  "CMakeFiles/fg_systemf.dir/Value.cpp.o"
  "CMakeFiles/fg_systemf.dir/Value.cpp.o.d"
  "libfg_systemf.a"
  "libfg_systemf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fg_systemf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
