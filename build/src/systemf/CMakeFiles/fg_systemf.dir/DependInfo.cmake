
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systemf/Builtins.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/Builtins.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/Builtins.cpp.o.d"
  "/root/repo/src/systemf/Compile.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/Compile.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/Compile.cpp.o.d"
  "/root/repo/src/systemf/Eval.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/Eval.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/Eval.cpp.o.d"
  "/root/repo/src/systemf/Optimize.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/Optimize.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/Optimize.cpp.o.d"
  "/root/repo/src/systemf/Term.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/Term.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/Term.cpp.o.d"
  "/root/repo/src/systemf/Type.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/Type.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/Type.cpp.o.d"
  "/root/repo/src/systemf/TypeCheck.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/TypeCheck.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/TypeCheck.cpp.o.d"
  "/root/repo/src/systemf/Value.cpp" "src/systemf/CMakeFiles/fg_systemf.dir/Value.cpp.o" "gcc" "src/systemf/CMakeFiles/fg_systemf.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
