file(REMOVE_RECURSE
  "libfg_systemf.a"
)
