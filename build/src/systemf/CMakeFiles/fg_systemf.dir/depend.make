# Empty dependencies file for fg_systemf.
# This may be replaced when dependencies are built.
