file(REMOVE_RECURSE
  "CMakeFiles/fg_core.dir/AST.cpp.o"
  "CMakeFiles/fg_core.dir/AST.cpp.o.d"
  "CMakeFiles/fg_core.dir/Builtins.cpp.o"
  "CMakeFiles/fg_core.dir/Builtins.cpp.o.d"
  "CMakeFiles/fg_core.dir/Check.cpp.o"
  "CMakeFiles/fg_core.dir/Check.cpp.o.d"
  "CMakeFiles/fg_core.dir/Congruence.cpp.o"
  "CMakeFiles/fg_core.dir/Congruence.cpp.o.d"
  "CMakeFiles/fg_core.dir/Interp.cpp.o"
  "CMakeFiles/fg_core.dir/Interp.cpp.o.d"
  "CMakeFiles/fg_core.dir/Type.cpp.o"
  "CMakeFiles/fg_core.dir/Type.cpp.o.d"
  "libfg_core.a"
  "libfg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
