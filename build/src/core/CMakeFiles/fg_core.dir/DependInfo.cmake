
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AST.cpp" "src/core/CMakeFiles/fg_core.dir/AST.cpp.o" "gcc" "src/core/CMakeFiles/fg_core.dir/AST.cpp.o.d"
  "/root/repo/src/core/Builtins.cpp" "src/core/CMakeFiles/fg_core.dir/Builtins.cpp.o" "gcc" "src/core/CMakeFiles/fg_core.dir/Builtins.cpp.o.d"
  "/root/repo/src/core/Check.cpp" "src/core/CMakeFiles/fg_core.dir/Check.cpp.o" "gcc" "src/core/CMakeFiles/fg_core.dir/Check.cpp.o.d"
  "/root/repo/src/core/Congruence.cpp" "src/core/CMakeFiles/fg_core.dir/Congruence.cpp.o" "gcc" "src/core/CMakeFiles/fg_core.dir/Congruence.cpp.o.d"
  "/root/repo/src/core/Interp.cpp" "src/core/CMakeFiles/fg_core.dir/Interp.cpp.o" "gcc" "src/core/CMakeFiles/fg_core.dir/Interp.cpp.o.d"
  "/root/repo/src/core/Type.cpp" "src/core/CMakeFiles/fg_core.dir/Type.cpp.o" "gcc" "src/core/CMakeFiles/fg_core.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fg_support.dir/DependInfo.cmake"
  "/root/repo/build/src/systemf/CMakeFiles/fg_systemf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
