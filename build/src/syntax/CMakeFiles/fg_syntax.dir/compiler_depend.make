# Empty compiler generated dependencies file for fg_syntax.
# This may be replaced when dependencies are built.
