file(REMOVE_RECURSE
  "CMakeFiles/fg_syntax.dir/Frontend.cpp.o"
  "CMakeFiles/fg_syntax.dir/Frontend.cpp.o.d"
  "CMakeFiles/fg_syntax.dir/Lexer.cpp.o"
  "CMakeFiles/fg_syntax.dir/Lexer.cpp.o.d"
  "CMakeFiles/fg_syntax.dir/Parser.cpp.o"
  "CMakeFiles/fg_syntax.dir/Parser.cpp.o.d"
  "libfg_syntax.a"
  "libfg_syntax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fg_syntax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
