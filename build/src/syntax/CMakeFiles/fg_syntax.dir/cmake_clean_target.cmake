file(REMOVE_RECURSE
  "libfg_syntax.a"
)
